(* Topology-wide symbolic reachability.

   The abstract packet is propagated node by node: at each node the
   program is executed abstractly (Absint.exec) against that node's
   registry, the first match FN's abstract value decides the
   successor set (a known value follows the node's route table, an
   abstract value fans out to every route target), and the
   post-execution store is joined into each successor's state until a
   fixpoint. Defects that no per-program check can see fall out:

   - a forwarding cycle in the traversed edges is a Loop: the match
     value never changes along it, so only hop-limit expiry drops the
     packet;
   - a node with no route for a known match value is a Blackhole;
   - a node missing a mandatory key that is only reached after an
     upstream FN rewrote the match field is the §2.4 deployment gap a
     shortest-path walk (check_deployment) cannot find. *)

module Bitbuf = Dip_bitbuf.Bitbuf
module Field = Dip_bitbuf.Field
module Topology = Dip_netsim.Topology
open Dip_core

type node = {
  n_registry : Registry.t option;  (* None = every key installed *)
  n_routes : (string * int) list;  (* exact match-field bytes -> next node *)
  n_local : string list;  (* match values this node delivers locally *)
}

type config = {
  c_topology : Topology.t;
  c_node : int -> node;
  c_src : int;
  c_dst : int;
}

let hex s =
  String.concat "" (List.map (Printf.sprintf "%02x") (List.map Char.code (List.init (String.length s) (String.get s))))

(* The region-relative target field of the first FN whose key has
   forwarding access — the slice Dip_mcore.Flow hashes and the match
   value routing keys on. *)
let match_field fns =
  List.find_opt
    (fun (fn : Fn.t) -> (Registry.access fn.Fn.key).Registry.forwarding)
    fns
  |> Option.map (fun (fn : Fn.t) -> fn.Fn.field)

let check config ~region_bits ?bytes (fns : Fn.t list) =
  let program = List.mapi (fun i fn -> (i, fn)) fns in
  let n = config.c_topology.Topology.node_count in
  if config.c_src < 0 || config.c_src >= n || config.c_dst < 0
     || config.c_dst >= n
  then
    [
      Report.error Report.Deployment
        (Printf.sprintf "src %d / dst %d outside the %d-node topology"
           config.c_src config.c_dst n);
    ]
  else begin
    let ff = match_field fns in
    let states : Absint.store option array = Array.make n None in
    let edges : (int * int, unit) Hashtbl.t = Hashtbl.create 16 in
    let seen : (Report.check * string, unit) Hashtbl.t = Hashtbl.create 8 in
    let diags = ref [] in
    let add d =
      let k = (d.Report.check, d.Report.message) in
      if not (Hashtbl.mem seen k) then begin
        Hashtbl.replace seen k ();
        diags := d :: !diags
      end
    in
    let delivered = ref false in
    let rewritten_note st =
      match ff with
      | None -> ""
      | Some f -> (
          match Absint.read st f with
          | Absint.Abs (_, (_ :: _ as ws)) ->
              Printf.sprintf
                " — reachable only after FN %s rewrote the match field"
                (String.concat "/"
                   (List.map (fun i -> string_of_int (i + 1)) ws))
          | _ -> "")
    in
    let queue = Queue.create () in
    states.(config.c_src) <- Some (Absint.init ~bits:region_bits ?bytes ());
    Queue.add config.c_src queue;
    let budget = ref ((n + 1) * (List.length fns + 4) * 64) in
    while not (Queue.is_empty queue) && !budget > 0 do
      decr budget;
      let u = Queue.pop queue in
      match states.(u) with
      | None -> ()
      | Some st ->
          let node = config.c_node u in
          let side = if u = config.c_dst then Absint.Host else Absint.Router in
          let installed key =
            match node.n_registry with
            | None -> true
            | Some r -> Registry.supports r key
          in
          let missing =
            List.filter
              (fun (_, (fn : Fn.t)) ->
                Absint.side_of_tag fn.Fn.tag = side
                && Engine.mandatory fn.Fn.key
                && not (installed fn.Fn.key))
              program
          in
          if missing <> [] then
            List.iter
              (fun (i, (fn : Fn.t)) ->
                add
                  (Report.error ~fn_index:i Report.Deployment
                     (Printf.sprintf
                        "mandatory %s is not installed on node %d: the node \
                         answers FN-unsupported%s"
                        (Opkey.name fn.Fn.key) u (rewritten_note st))))
              missing
          else begin
            let r =
              Absint.exec ?registry:node.n_registry ~store:st ~side
                ~region_bits program
            in
            if u = config.c_dst then delivered := true
            else begin
              let decide =
                List.find_opt
                  (fun (s : Absint.step) ->
                    s.Absint.st_ran
                    && (Registry.transfer s.Absint.st_fn.Fn.key)
                         .Registry.t_match)
                  r.Absint.steps
              in
              let succs =
                match decide with
                | None ->
                    add
                      (Report.error Report.Blackhole
                         (Printf.sprintf
                            "no forwarding FN executes on node %d: the packet \
                             is dropped there"
                            u));
                    []
                | Some s -> (
                    match s.Absint.st_value with
                    | Some (Absint.Bytes b) ->
                        if List.mem b node.n_local then begin
                          delivered := true;
                          []
                        end
                        else (
                          match List.assoc_opt b node.n_routes with
                          | Some v -> [ v ]
                          | None ->
                              add
                                (Report.error ~fn_index:s.Absint.st_index
                                   Report.Blackhole
                                   (Printf.sprintf
                                      "node %d has no route for match value \
                                       0x%s: the packet black-holes"
                                      u (hex b)));
                              [])
                    | _ ->
                        let targets =
                          List.sort_uniq compare (List.map snd node.n_routes)
                        in
                        if targets = [] then begin
                          add
                            (Report.error ~fn_index:s.Absint.st_index
                               Report.Blackhole
                               (Printf.sprintf
                                  "node %d has no routes at all for the \
                                   (rewritten) match value"
                                  u));
                          []
                        end
                        else targets)
              in
              List.iter
                (fun v ->
                  if v < 0 || v >= n then
                    add
                      (Report.error Report.Blackhole
                         (Printf.sprintf
                            "node %d routes to nonexistent node %d" u v))
                  else begin
                    Hashtbl.replace edges (u, v) ();
                    let joined =
                      match states.(v) with
                      | None -> r.Absint.store
                      | Some old -> Absint.join old r.Absint.store
                    in
                    let changed =
                      match states.(v) with
                      | None -> true
                      | Some old -> not (Absint.equal old joined)
                    in
                    if changed then begin
                      states.(v) <- Some joined;
                      Queue.add v queue
                    end
                  end)
                succs
            end
          end
    done;
    (* Loop detection: any directed cycle among the traversed edges,
       reachable from src (all recorded edges are). *)
    let succs_of u =
      Hashtbl.fold (fun (a, b) () acc -> if a = u then b :: acc else acc)
        edges []
    in
    let color = Array.make n 0 (* 0 white, 1 on stack, 2 done *) in
    let cycle = ref None in
    let rec dfs path u =
      if color.(u) = 1 then begin
        if !cycle = None then begin
          (* [path] is ancestors, most recent first: the cycle runs
             from u's occurrence on the stack back to u. *)
          let rec cut = function
            | [] -> []
            | x :: rest -> if x = u then x :: rest else cut rest
          in
          cycle := Some (cut (List.rev path) @ [ u ])
        end
      end
      else if color.(u) = 0 then begin
        color.(u) <- 1;
        List.iter (fun v -> dfs (u :: path) v) (List.sort compare (succs_of u));
        color.(u) <- 2
      end
    in
    dfs [] config.c_src;
    (match !cycle with
    | Some nodes ->
        add
          (Report.error Report.Loop
             (Printf.sprintf
                "unbounded forwarding loop %s: no FN changes the match value \
                 along the cycle, so only basic-header hop-limit expiry \
                 drops the packet"
                (String.concat "→" (List.map string_of_int nodes))))
    | None -> ());
    if (not !delivered) && !diags = [] then
      add
        (Report.error Report.Blackhole
           (Printf.sprintf "the packet never reaches node %d" config.c_dst));
    List.rev !diags
  end

let check_view config (view : Packet.view) =
  let h = view.Packet.header in
  let region_bits = 8 * h.Header.fn_loc_len in
  let bytes =
    if region_bits = 0 then None
    else
      Some
        (Bitbuf.get_field view.Packet.buf
           (Field.v ~off_bits:(8 * view.Packet.loc_base) ~len_bits:region_bits))
  in
  check config ~region_bits ?bytes (Array.to_list view.Packet.fns)

let match_value (view : Packet.view) =
  match match_field (Array.to_list view.Packet.fns) with
  | None -> None
  | Some f ->
      let h = view.Packet.header in
      if Field.last_bit f > 8 * h.Header.fn_loc_len then None
      else
        Some
          (Bitbuf.get_field view.Packet.buf
             (Field.v
                ~off_bits:(8 * view.Packet.loc_base + f.Field.off_bits)
                ~len_bits:f.Field.len_bits))
