module Report = Report
module Bitbuf = Dip_bitbuf.Bitbuf
module Field = Dip_bitbuf.Field
open Dip_core

let access (fn : Fn.t) = Registry.access fn.Fn.key

(* Two FNs conflict — must be serialized by a parallel dataplane —
   when their target slices overlap with at least one writer, or when
   the earlier one produces the scratch value the later one consumes.
   [conflict a b] assumes [a] precedes [b] in program order. *)
let conflict a b =
  let aa = access a and ab = access b in
  (Field.overlaps a.Fn.field b.Fn.field
  && (Registry.writes_target aa || Registry.writes_target ab))
  || (aa.Registry.writes_scratch && ab.Registry.reads_scratch)

let levels ~conflict fns =
  let n = Array.length fns in
  let level = Array.make n 1 in
  for j = 0 to n - 1 do
    for i = 0 to j - 1 do
      if conflict fns.(i) fns.(j) then
        level.(j) <- max level.(j) (level.(i) + 1)
    done
  done;
  level

let depth_of_array fns =
  if Array.length fns = 0 then 0
  else Array.fold_left max 1 (levels ~conflict fns)

let depth fns = depth_of_array (Array.of_list fns)

(* --- the check classes; each works on (original_index, fn) pairs so
   that packet-level analysis can skip undecodable FNs without losing
   the indices of the rest --- *)

let wire_limit = 0xFFFF

let bounds_diags ~loc_len_bits indexed =
  List.concat_map
    (fun (i, (fn : Fn.t)) ->
      let f = fn.Fn.field in
      let wire =
        if f.Field.off_bits > wire_limit || f.Field.len_bits > wire_limit then
          [
            Report.error ~fn_index:i ~field:f Report.Bounds
              (Format.asprintf
                 "target %a does not fit the 16-bit loc/len wire fields"
                 Field.pp f);
          ]
        else []
      in
      let region =
        if Field.last_bit f > loc_len_bits then
          [
            Report.error ~fn_index:i ~field:f Report.Bounds
              (Format.asprintf
                 "target %a exceeds the %d-bit FN-locations region" Field.pp f
                 loc_len_bits);
          ]
        else []
      in
      wire @ region)
    indexed

(* Race detection only matters under the §2.2 parallel flag:
   Algorithm 1's sequential order is otherwise authoritative. *)
let race_diags indexed =
  let rec pairs = function
    | [] -> []
    | x :: rest -> List.map (fun y -> (x, y)) rest @ pairs rest
  in
  List.filter_map
    (fun ((i, (a : Fn.t)), (j, (b : Fn.t))) ->
      if not (Field.overlaps a.Fn.field b.Fn.field) then None
      else
        let wa = Registry.writes_target (access a)
        and wb = Registry.writes_target (access b) in
        if not (wa || wb) then None
        else
          let lo = max a.Fn.field.Field.off_bits b.Fn.field.Field.off_bits in
          let hi = min (Field.last_bit a.Fn.field) (Field.last_bit b.Fn.field) in
          let kind = if wa && wb then "write-write" else "read-write" in
          Some
            (Report.error ~fn_index:j
               ~field:(Field.v ~off_bits:lo ~len_bits:(hi - lo))
               Report.Race
               (Printf.sprintf
                  "%s race between %s (FN %d) and %s (FN %d) on bits %d..%d \
                   under the parallel flag"
                  kind (Opkey.name a.Fn.key) (i + 1) (Opkey.name b.Fn.key)
                  (j + 1) lo hi)))
    (pairs indexed)

(* The engine serializes parallel execution by field overlap alone
   (Engine.critical_path). A scratch dependency between FNs whose
   slices do not overlap escapes that ordering: the consumer could run
   level-concurrent with (or before) its producer. *)
let parallel_scratch_diags indexed =
  let arr = Array.of_list (List.map snd indexed) in
  let idx = Array.of_list (List.map fst indexed) in
  let overlap_only (a : Fn.t) (b : Fn.t) =
    Field.overlaps a.Fn.field b.Fn.field
  in
  let engine_level = levels ~conflict:overlap_only arr in
  let out = ref [] in
  Array.iteri
    (fun j b ->
      if (access b).Registry.reads_scratch then
        Array.iteri
          (fun i a ->
            if
              i < j
              && (access a).Registry.writes_scratch
              && engine_level.(i) >= engine_level.(j)
            then
              out :=
                Report.error ~fn_index:idx.(j) Report.Race
                  (Printf.sprintf
                     "parallel flag unsafe: %s (FN %d) consumes scratch from \
                      %s (FN %d) but no field overlap orders them"
                     (Opkey.name b.Fn.key)
                     (idx.(j) + 1)
                     (Opkey.name a.Fn.key)
                     (idx.(i) + 1))
                :: !out)
          arr)
    arr;
  List.rev !out

(* Scratch-mediated dataflow must respect program order per execution
   side: the engine skips host-tagged FNs on routers and vice versa
   (Algorithm 1 line 5), so a producer only counts for a consumer
   with the same tag. *)
let dependency_diags indexed =
  List.filter_map
    (fun (j, (fn : Fn.t)) ->
      if not (access fn).Registry.reads_scratch then None
      else if
        List.exists
          (fun (i, (p : Fn.t)) ->
            i < j && (access p).Registry.writes_scratch && p.Fn.tag = fn.Fn.tag)
          indexed
      then None
      else
        Some
          (Report.error ~fn_index:j ~field:fn.Fn.field Report.Dependency
             (Printf.sprintf
                "%s consumes scratch.opt_key but no preceding %s-tagged \
                 F_parm produces it"
                (Opkey.name fn.Fn.key)
                (match fn.Fn.tag with Fn.Router -> "router" | Fn.Host -> "host"))))
    indexed

let key_diags ~registry indexed =
  List.filter_map
    (fun (i, (fn : Fn.t)) ->
      if Registry.supports registry fn.Fn.key then None
      else if Engine.mandatory fn.Fn.key then
        Some
          (Report.error ~fn_index:i Report.Key
             (Printf.sprintf
                "mandatory %s is not installed: the node would answer \
                 FN-unsupported"
                (Opkey.name fn.Fn.key)))
      else
        Some
          (Report.warning ~fn_index:i Report.Key
             (Printf.sprintf "%s is not installed: the node skips it (§2.4)"
                (Opkey.name fn.Fn.key))))
    indexed

let tag_diags indexed =
  List.filter_map
    (fun (i, (fn : Fn.t)) ->
      if fn.Fn.tag = Fn.Host && (access fn).Registry.forwarding then
        Some
          (Report.warning ~fn_index:i ~field:fn.Fn.field Report.Tag
             (Printf.sprintf
                "host-tagged %s: routers silently skip it, so it can never \
                 steer forwarding"
                (Opkey.name fn.Fn.key)))
      else None)
    indexed

let check_indexed ?registry ~parallel ~loc_len_bits ~fn_count indexed =
  let fns = Array.of_list (List.map snd indexed) in
  let diags =
    bounds_diags ~loc_len_bits indexed
    @ (if parallel then race_diags indexed @ parallel_scratch_diags indexed
       else [])
    @ dependency_diags indexed
    @ (match registry with
      | Some r -> key_diags ~registry:r indexed
      | None -> [])
    @ tag_diags indexed
  in
  {
    Report.diags;
    fn_count;
    depth = depth_of_array fns;
    engine_depth = Engine.critical_path fns;
  }

let analyze ?registry ?(parallel = false) ~loc_len fns =
  let indexed = List.mapi (fun i fn -> (i, fn)) fns in
  check_indexed ?registry ~parallel ~loc_len_bits:(8 * loc_len)
    ~fn_count:(List.length fns) indexed

let analyze_view ?registry (view : Packet.view) =
  let indexed =
    List.mapi (fun i fn -> (i, fn)) (Array.to_list view.Packet.fns)
  in
  check_indexed ?registry ~parallel:view.Packet.header.Header.parallel
    ~loc_len_bits:(8 * view.Packet.header.Header.fn_loc_len)
    ~fn_count:(Array.length view.Packet.fns)
    indexed

let analyze_packet ?registry buf =
  match Header.decode buf with
  | Error e ->
      {
        Report.diags = [ Report.error Report.Parse ("header: " ^ e) ];
        fn_count = 0;
        depth = 0;
        engine_depth = 0;
      }
  | Ok h ->
      (* Lenient FN decode: Header.decode guarantees the definition
         list fits the buffer, so the raw uint16 reads are safe; a
         bad triple becomes a diagnostic instead of ending the
         analysis. *)
      let parse_diags = ref [] and indexed = ref [] in
      for i = h.Header.fn_num - 1 downto 0 do
        let pos = Header.fn_offset i in
        let loc = Bitbuf.get_uint16 buf pos in
        let len = Bitbuf.get_uint16 buf (pos + 2) in
        let raw = Bitbuf.get_uint16 buf (pos + 4) in
        let tag = if raw land 0x8000 <> 0 then Fn.Host else Fn.Router in
        match Opkey.of_int (raw land 0x7FFF) with
        | None ->
            parse_diags :=
              Report.error ~fn_index:i Report.Key
                (Printf.sprintf "unknown operation key %d" (raw land 0x7FFF))
              :: !parse_diags
        | Some key ->
            if len = 0 then
              parse_diags :=
                Report.error ~fn_index:i Report.Bounds
                  "zero-length target field"
                :: !parse_diags
            else indexed := (i, Fn.v ~tag ~loc ~len key) :: !indexed
      done;
      let r =
        check_indexed ?registry ~parallel:h.Header.parallel
          ~loc_len_bits:(8 * h.Header.fn_loc_len) ~fn_count:h.Header.fn_num
          !indexed
      in
      { r with Report.diags = !parse_diags @ r.Report.diags }

let check_deployment ~topology ~registry_at ~src ~dst fns =
  match Dip_netsim.Topology.path topology ~src ~dst with
  | None ->
      [
        Report.error Report.Deployment
          (Printf.sprintf "no path from node %d to node %d" src dst);
      ]
  | Some nodes ->
      let path_str = String.concat "→" (List.map string_of_int nodes) in
      (* One diagnostic per distinct mandatory (key, tag) used, at its
         first occurrence. *)
      let seen = Hashtbl.create 8 in
      let mandatory =
        List.concat
          (List.mapi
             (fun i (fn : Fn.t) ->
               if
                 Engine.mandatory fn.Fn.key
                 && not (Hashtbl.mem seen (fn.Fn.key, fn.Fn.tag))
               then begin
                 Hashtbl.replace seen (fn.Fn.key, fn.Fn.tag) ();
                 [ (i, fn) ]
               end
               else [])
             fns)
      in
      List.concat_map
        (fun (i, (fn : Fn.t)) ->
          let must_support =
            match fn.Fn.tag with
            | Fn.Router ->
                (* routers between the endpoints execute it *)
                List.filter (fun n -> n <> src && n <> dst) nodes
            | Fn.Host -> [ dst ]
          in
          List.filter_map
            (fun n ->
              if Registry.supports (registry_at n) fn.Fn.key then None
              else
                Some
                  (Report.error ~fn_index:i Report.Deployment
                     (Printf.sprintf
                        "mandatory %s is not installed on node %d (path %s)"
                        (Opkey.name fn.Fn.key) n path_str)))
            must_support)
        mandatory

let verifier ?registry () view =
  match Report.first_error (analyze_view ?registry view) with
  | None -> Ok ()
  | Some msg -> Error msg

let hook ?registry verify =
  if verify then Some (verifier ?registry ()) else None

let process ?(verify = false) ~registry env ~now ~ingress buf =
  Engine.process ?verify:(hook ~registry verify) ~registry env ~now ~ingress
    buf

let host_process ?(verify = false) ~registry env ~now ~ingress buf =
  Engine.host_process ?verify:(hook ~registry verify) ~registry env ~now
    ~ingress buf

let handler ?(verify = false) ~registry env =
  Engine.handler ?verify:(hook ~registry verify) ~registry env

let host_handler ?(verify = false) ~registry env =
  Engine.host_handler ?verify:(hook ~registry verify) ~registry env
