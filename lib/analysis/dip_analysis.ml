module Report = Report
module Absint = Absint
module Reach = Reach
module Bitbuf = Dip_bitbuf.Bitbuf
module Field = Dip_bitbuf.Field
open Dip_core

let access (fn : Fn.t) = Registry.access fn.Fn.key

(* Two FNs conflict — must be serialized by a parallel dataplane —
   when their target slices overlap with at least one writer, or when
   the earlier one produces the scratch value the later one consumes.
   [conflict a b] assumes [a] precedes [b] in program order. *)
let conflict a b =
  let aa = access a and ab = access b in
  (Field.overlaps a.Fn.field b.Fn.field
  && (Registry.writes_target aa || Registry.writes_target ab))
  || (aa.Registry.writes_scratch && ab.Registry.reads_scratch)

let levels ~conflict fns =
  let n = Array.length fns in
  let level = Array.make n 1 in
  for j = 0 to n - 1 do
    for i = 0 to j - 1 do
      if conflict fns.(i) fns.(j) then
        level.(j) <- max level.(j) (level.(i) + 1)
    done
  done;
  level

let depth_of_array fns =
  if Array.length fns = 0 then 0
  else Array.fold_left max 1 (levels ~conflict fns)

let depth fns = depth_of_array (Array.of_list fns)

let flow_field = Reach.match_field

(* --- the check classes; each works on (original_index, fn) pairs so
   that packet-level analysis can skip undecodable FNs without losing
   the indices of the rest --- *)

let wire_limit = 0xFFFF

let bounds_diags ~loc_len_bits indexed =
  List.concat_map
    (fun (i, (fn : Fn.t)) ->
      let f = fn.Fn.field in
      let wire =
        if f.Field.off_bits > wire_limit || f.Field.len_bits > wire_limit then
          [
            Report.error ~fn_index:i ~field:f Report.Bounds
              (Format.asprintf
                 "target %a does not fit the 16-bit loc/len wire fields"
                 Field.pp f);
          ]
        else []
      in
      let region =
        if Field.last_bit f > loc_len_bits then
          [
            Report.error ~fn_index:i ~field:f Report.Bounds
              (Format.asprintf
                 "target %a exceeds the %d-bit FN-locations region" Field.pp f
                 loc_len_bits);
          ]
        else []
      in
      wire @ region)
    indexed

(* The slices an FN actually touches, resolved from its declared
   transfer function (an FN that reads the whole region touches
   everything). *)
let touched ~region_bits (fn : Fn.t) =
  let reads, writes, tr = Absint.resolved ~region_bits fn in
  let reads =
    if tr.Registry.t_reads_region && region_bits > 0 then
      Field.v ~off_bits:0 ~len_bits:region_bits :: reads
    else reads
  in
  (reads, List.map fst writes)

(* Race detection only matters under the §2.2 parallel flag:
   Algorithm 1's sequential order is otherwise authoritative. Unlike
   the v1 pairwise check this works on the resolved transfer slices,
   so an FN that only writes one byte of its target (F_dag) races on
   exactly that byte. *)
let race_diags ~region_bits indexed =
  let rec pairs = function
    | [] -> []
    | x :: rest -> List.map (fun y -> (x, y)) rest @ pairs rest
  in
  let first_overlap l1 l2 =
    List.fold_left
      (fun acc a ->
        match acc with
        | Some _ -> acc
        | None ->
            List.fold_left
              (fun acc b ->
                match acc with
                | Some _ -> acc
                | None ->
                    if Field.overlaps a b then
                      let lo = max a.Field.off_bits b.Field.off_bits in
                      let hi = min (Field.last_bit a) (Field.last_bit b) in
                      Some (lo, hi)
                    else None)
              None l2)
      None l1
  in
  List.filter_map
    (fun ((i, (a : Fn.t)), (j, (b : Fn.t))) ->
      let ra, wa = touched ~region_bits a and rb, wb = touched ~region_bits b in
      let ww = first_overlap wa wb in
      let rw =
        match first_overlap wa rb with
        | Some _ as s -> s
        | None -> first_overlap ra wb
      in
      match (ww, rw) with
      | None, None -> None
      | _ ->
          let kind, (lo, hi) =
            match ww with
            | Some s -> ("write-write", s)
            | None -> ("read-write", Option.get rw)
          in
          Some
            (Report.error ~fn_index:j
               ~field:(Field.v ~off_bits:lo ~len_bits:(hi - lo))
               Report.Race
               (Printf.sprintf
                  "%s race between %s (FN %d) and %s (FN %d) on bits %d..%d \
                   under the parallel flag"
                  kind (Opkey.name a.Fn.key) (i + 1) (Opkey.name b.Fn.key)
                  (j + 1) lo hi)))
    (pairs indexed)

(* True dependence edges — scratch chains and slice dataflow at any
   depth, from the abstract execution — that the engine's
   overlap-only leveling (Engine.critical_path) fails to order. Under
   the parallel flag such an edge is an Error: the consumer can run
   level-concurrent with (or before) its producer. Sequentially the
   program is correct, but it breaks the moment the flag is set, so
   it is still reported as a Warning. *)
let ordering_hazard_diags ?registry ~parallel ~region_bits indexed =
  let arr = Array.of_list (List.map snd indexed) in
  let overlap_only (a : Fn.t) (b : Fn.t) =
    Field.overlaps a.Fn.field b.Fn.field
  in
  let engine_level = levels ~conflict:overlap_only arr in
  let pos = Hashtbl.create 8 in
  List.iteri (fun p (i, _) -> Hashtbl.replace pos i p) indexed;
  let edges = ref [] in
  let add_edge e = if not (List.mem e !edges) then edges := e :: !edges in
  let run side =
    let r = Absint.exec ?registry ~side ~region_bits indexed in
    List.iter
      (fun (s : Absint.step) ->
        if s.Absint.st_ran then begin
          List.iter
            (fun (c, p) -> add_edge (p, s.Absint.st_index, Some c))
            s.Absint.st_scratch_deps;
          List.iter
            (fun i ->
              if i <> s.Absint.st_index then
                add_edge (i, s.Absint.st_index, None))
            s.Absint.st_read_writers
        end)
      r.Absint.steps
  in
  run Absint.Router;
  run Absint.Host;
  List.sort compare !edges
  |> List.filter_map (fun (i, j, via) ->
         match (Hashtbl.find_opt pos i, Hashtbl.find_opt pos j) with
         | Some pi, Some pj when engine_level.(pi) >= engine_level.(pj) ->
             let a = arr.(pi) and b = arr.(pj) in
             let dep =
               match via with
               | Some c -> Printf.sprintf "consumes scratch.%s from" c
               | None -> "reads bits written by"
             in
             if parallel then
               Some
                 (Report.error ~fn_index:j Report.Race
                    (Printf.sprintf
                       "parallel flag unsafe: %s (FN %d) %s %s (FN %d) but \
                        no field overlap orders them"
                       (Opkey.name b.Fn.key) (j + 1) dep (Opkey.name a.Fn.key)
                       (i + 1)))
             else
               Some
                 (Report.warning ~fn_index:j Report.Race
                    (Printf.sprintf
                       "latent parallel hazard: %s (FN %d) %s %s (FN %d) \
                        with no field overlap to order them — the program \
                        breaks the moment the §2.2 parallel flag is set"
                       (Opkey.name b.Fn.key) (j + 1) dep (Opkey.name a.Fn.key)
                       (i + 1)))
         | _ -> None)

(* Scratch-mediated dataflow must respect program order per execution
   side: the engine skips host-tagged FNs on routers and vice versa
   (Algorithm 1 line 5), so a producer only counts for a consumer
   with the same tag. The abstract execution reports exactly the
   consumers whose cells no earlier same-side FN produced. *)
let dependency_diags ~region_bits indexed =
  let run side = (Absint.exec ~side ~region_bits indexed).Absint.steps in
  List.concat_map
    (fun (s : Absint.step) ->
      List.map
        (fun c ->
          Report.error ~fn_index:s.Absint.st_index
            ~field:s.Absint.st_fn.Fn.field Report.Dependency
            (Printf.sprintf
               "%s consumes scratch.%s but no preceding %s-tagged producer \
                provides it"
               (Opkey.name s.Absint.st_fn.Fn.key)
               c
               (match s.Absint.st_fn.Fn.tag with
               | Fn.Router -> "router"
               | Fn.Host -> "host")))
        s.Absint.st_missing_scratch)
    (run Absint.Router @ run Absint.Host)

(* The mcore sharding invariant: Dip_mcore.Flow hashes the bytes of
   the first forwarding FN's target, so per-flow worker affinity (and
   with it per-flow state and ordering) requires that no router-side
   FN rewrites those bits with per-node or packet-derived data. A
   deterministic in-place step (W_step, e.g. F_dag advancing the DAG
   pointer) is exempt: every packet of the flow takes the same step
   sequence, so at any given node the flow still hashes alike. *)
let sharding_diags ?registry ~region_bits indexed =
  match Reach.match_field (List.map snd indexed) with
  | None -> []
  | Some ff ->
      List.concat_map
        (fun (j, (fn : Fn.t)) ->
          let installed =
            match registry with
            | None -> true
            | Some r -> Registry.supports r fn.Fn.key
          in
          if fn.Fn.tag <> Fn.Router || not installed then []
          else
            let _, writes, _ = Absint.resolved ~region_bits fn in
            List.filter_map
              (fun (f, k) ->
                match k with
                | Registry.W_step -> None
                | Registry.W_node | Registry.W_data ->
                    if Field.overlaps f ff then
                      let lo = max f.Field.off_bits ff.Field.off_bits in
                      let hi = min (Field.last_bit f) (Field.last_bit ff) in
                      Some
                        (Report.error ~fn_index:j
                           ~field:(Field.v ~off_bits:lo ~len_bits:(hi - lo))
                           Report.Sharding
                           (Printf.sprintf
                              "%s (FN %d) writes %s data over bits %d..%d of \
                               the flow-hash match field: packets of one \
                               flow would hash to different mcore workers"
                              (Opkey.name fn.Fn.key) (j + 1)
                              (match k with
                              | Registry.W_node -> "node-local"
                              | _ -> "packet-derived")
                              lo hi))
                    else None)
              writes)
        indexed

let key_diags ~registry indexed =
  List.filter_map
    (fun (i, (fn : Fn.t)) ->
      if Registry.supports registry fn.Fn.key then None
      else if Engine.mandatory fn.Fn.key then
        Some
          (Report.error ~fn_index:i Report.Key
             (Printf.sprintf
                "mandatory %s is not installed: the node would answer \
                 FN-unsupported"
                (Opkey.name fn.Fn.key)))
      else
        Some
          (Report.warning ~fn_index:i Report.Key
             (Printf.sprintf "%s is not installed: the node skips it (§2.4)"
                (Opkey.name fn.Fn.key))))
    indexed

let tag_diags indexed =
  List.filter_map
    (fun (i, (fn : Fn.t)) ->
      if fn.Fn.tag = Fn.Host && (access fn).Registry.forwarding then
        Some
          (Report.warning ~fn_index:i ~field:fn.Fn.field Report.Tag
             (Printf.sprintf
                "host-tagged %s: routers silently skip it, so it can never \
                 steer forwarding"
                (Opkey.name fn.Fn.key)))
      else None)
    indexed

let check_indexed ?registry ~parallel ~loc_len_bits ~fn_count indexed =
  let fns = Array.of_list (List.map snd indexed) in
  let region_bits = loc_len_bits in
  let diags =
    bounds_diags ~loc_len_bits indexed
    @ (if parallel then race_diags ~region_bits indexed else [])
    @ ordering_hazard_diags ?registry ~parallel ~region_bits indexed
    @ dependency_diags ~region_bits indexed
    @ sharding_diags ?registry ~region_bits indexed
    @ (match registry with
      | Some r -> key_diags ~registry:r indexed
      | None -> [])
    @ tag_diags indexed
  in
  {
    Report.diags;
    fn_count;
    depth = depth_of_array fns;
    engine_depth = Engine.critical_path fns;
  }

let analyze ?registry ?(parallel = false) ~loc_len fns =
  let indexed = List.mapi (fun i fn -> (i, fn)) fns in
  check_indexed ?registry ~parallel ~loc_len_bits:(8 * loc_len)
    ~fn_count:(List.length fns) indexed

let analyze_view ?registry (view : Packet.view) =
  let indexed =
    List.mapi (fun i fn -> (i, fn)) (Array.to_list view.Packet.fns)
  in
  check_indexed ?registry ~parallel:view.Packet.header.Header.parallel
    ~loc_len_bits:(8 * view.Packet.header.Header.fn_loc_len)
    ~fn_count:(Array.length view.Packet.fns)
    indexed

let analyze_packet ?registry buf =
  match Header.decode buf with
  | Error e ->
      {
        Report.diags = [ Report.error Report.Parse ("header: " ^ e) ];
        fn_count = 0;
        depth = 0;
        engine_depth = 0;
      }
  | Ok h ->
      (* Lenient FN decode: Header.decode guarantees the definition
         list fits the buffer, so the raw uint16 reads are safe; a
         bad triple becomes a diagnostic instead of ending the
         analysis. *)
      let parse_diags = ref [] and indexed = ref [] in
      for i = h.Header.fn_num - 1 downto 0 do
        let pos = Header.fn_offset i in
        let loc = Bitbuf.get_uint16 buf pos in
        let len = Bitbuf.get_uint16 buf (pos + 2) in
        let raw = Bitbuf.get_uint16 buf (pos + 4) in
        let tag = if raw land 0x8000 <> 0 then Fn.Host else Fn.Router in
        match Opkey.of_int (raw land 0x7FFF) with
        | None ->
            parse_diags :=
              Report.error ~fn_index:i Report.Key
                (Printf.sprintf "unknown operation key %d" (raw land 0x7FFF))
              :: !parse_diags
        | Some key ->
            if len = 0 then
              parse_diags :=
                Report.error ~fn_index:i Report.Bounds
                  "zero-length target field"
                :: !parse_diags
            else indexed := (i, Fn.v ~tag ~loc ~len key) :: !indexed
      done;
      let r =
        check_indexed ?registry ~parallel:h.Header.parallel
          ~loc_len_bits:(8 * h.Header.fn_loc_len) ~fn_count:h.Header.fn_num
          !indexed
      in
      { r with Report.diags = !parse_diags @ r.Report.diags }

let check_deployment ~topology ~registry_at ~src ~dst fns =
  match Dip_netsim.Topology.path topology ~src ~dst with
  | None ->
      [
        Report.error Report.Deployment
          (Printf.sprintf "no path from node %d to node %d" src dst);
      ]
  | Some nodes ->
      let path_str = String.concat "→" (List.map string_of_int nodes) in
      (* One diagnostic per distinct mandatory (key, tag) used, at its
         first occurrence. *)
      let seen = Hashtbl.create 8 in
      let mandatory =
        List.concat
          (List.mapi
             (fun i (fn : Fn.t) ->
               if
                 Engine.mandatory fn.Fn.key
                 && not (Hashtbl.mem seen (fn.Fn.key, fn.Fn.tag))
               then begin
                 Hashtbl.replace seen (fn.Fn.key, fn.Fn.tag) ();
                 [ (i, fn) ]
               end
               else [])
             fns)
      in
      List.concat_map
        (fun (i, (fn : Fn.t)) ->
          let must_support =
            match fn.Fn.tag with
            | Fn.Router ->
                (* routers between the endpoints execute it *)
                List.filter (fun n -> n <> src && n <> dst) nodes
            | Fn.Host -> [ dst ]
          in
          List.filter_map
            (fun n ->
              if Registry.supports (registry_at n) fn.Fn.key then None
              else
                Some
                  (Report.error ~fn_index:i Report.Deployment
                     (Printf.sprintf
                        "mandatory %s is not installed on node %d (path %s)"
                        (Opkey.name fn.Fn.key) n path_str)))
            must_support)
        mandatory

let verifier ?registry () view =
  match Report.first_error (analyze_view ?registry view) with
  | None -> Ok ()
  | Some msg -> Error msg

(* The engine memoizes [?verify] verdicts per cached program keyed on
   the hook's physical identity (Progcache.entry.verdict), so handing
   it a fresh closure per call would defeat the memoization. Keep one
   verifier per registry (compared physically); a single slot is
   enough because a node verifies against its own registry. *)
let verifier_slot :
    (Registry.t * (Packet.view -> (unit, string) result)) option Atomic.t =
  Atomic.make None

let shared_verifier registry =
  match Atomic.get verifier_slot with
  | Some (r, f) when r == registry -> f
  | _ ->
      let f = verifier ~registry () in
      Atomic.set verifier_slot (Some (registry, f));
      f

let hook ~registry verify =
  if verify then Some (shared_verifier registry) else None

let registry_gate ~programs registry =
  let rec go i = function
    | [] -> Ok ()
    | p :: rest -> (
        match Report.first_error (analyze_packet ~registry p) with
        | Some e -> Error (Printf.sprintf "program %d: %s" i e)
        | None -> go (i + 1) rest)
  in
  go 0 programs

let process ?(verify = false) ~registry env ~now ~ingress buf =
  Engine.process ?verify:(hook ~registry verify) ~registry env ~now ~ingress
    buf

let host_process ?(verify = false) ~registry env ~now ~ingress buf =
  Engine.host_process ?verify:(hook ~registry verify) ~registry env ~now
    ~ingress buf

let handler ?(verify = false) ~registry env =
  Engine.handler ?verify:(hook ~registry verify) ~registry env

let host_handler ?(verify = false) ~registry env =
  Engine.host_handler ?verify:(hook ~registry verify) ~registry env
