(** Static verification of FN programs.

    Every DIP packet carries a small {e program}: a list of FN
    triples [(field_loc, field_len, op_key)] indexing the shared
    FN-locations region (§2.2, Algorithm 1). This module checks such
    a program without executing it:

    - {b bounds} — every target slice fits the FN-locations region
      and the 16-bit wire fields;
    - {b overlap/race} — with the §2.2 parallel flag set, no two FNs
      may race on overlapping bits (classified write-write or
      read-write from the declared {!Dip_core.Registry.access}
      modes), and no scratch-mediated dependency may escape the
      engine's overlap-based serialization. The hazard-aware
      critical-path depth is always computed and cross-checked
      against {!Dip_core.Engine.critical_path};
    - {b dependency order} — scratch consumers (F_MAC, F_mark) must
      be preceded by a producer (F_parm) visible on the same
      execution side;
    - {b key/tag} — operation keys must be known and (given a
      registry) installed; mandatory keys that are missing would make
      the node answer FN-unsupported (§2.4); host-tagged forwarding
      FNs are flagged because routers silently skip them;
    - {b deployment} — given a topology and per-node registries,
      every {!Dip_core.Engine.mandatory} key must be installed on
      every on-path node (§2.4 heterogeneous deployment).

    The verifier is also available as an opt-in pre-check inside the
    engine ({!process} with [~verify:true], or
    [Engine.process ?verify:(verifier () )]) so simulator runs fail
    fast on malformed programs. *)

module Report = Report
module Absint = Absint
module Reach = Reach

val depth : Dip_core.Fn.t list -> int
(** Hazard-aware critical-path length: FNs conflict when their
    target slices overlap with at least one writer, or when one
    produces the scratch value the other consumes. [0] for the empty
    program. *)

val analyze :
  ?registry:Dip_core.Registry.t ->
  ?parallel:bool ->
  loc_len:int ->
  Dip_core.Fn.t list ->
  Report.t
(** Check a decoded FN program against a locations region of
    [loc_len] bytes. [parallel] (default [false]) is the §2.2 header
    flag; race diagnostics only apply when it is set, because
    Algorithm 1's sequential order is otherwise authoritative.
    Without [registry] the installed-key checks are skipped. *)

val analyze_view :
  ?registry:Dip_core.Registry.t -> Dip_core.Packet.view -> Report.t
(** {!analyze} on a parsed packet, taking the locations length and
    parallel flag from its header. *)

val analyze_packet :
  ?registry:Dip_core.Registry.t -> Dip_bitbuf.Bitbuf.t -> Report.t
(** Lenient whole-packet analysis: unlike {!Dip_core.Packet.parse},
    a malformed FN definition (unknown key, zero-length field)
    becomes a diagnostic rather than aborting, and the remaining FNs
    are still checked. A malformed basic header yields a single
    [Parse] error. *)

val check_deployment :
  topology:Dip_netsim.Topology.t ->
  registry_at:(int -> Dip_core.Registry.t) ->
  src:int ->
  dst:int ->
  Dip_core.Fn.t list ->
  Report.diag list
(** §2.4 heterogeneous-deployment check: walk the shortest path
    [src → dst] and report every {!Dip_core.Engine.mandatory} key of
    the program that some on-path node has not installed — such a
    node would answer FN-unsupported instead of forwarding.
    Router-tagged keys are required on the intermediate nodes,
    host-tagged ones on [dst]. An unreachable [dst] is itself a
    deployment error. *)

val flow_field : Dip_core.Fn.t list -> Dip_bitbuf.Field.t option
(** The region-relative target field of the first forwarding FN —
    the slice {!Dip_mcore.Flow} hashes for worker sharding and the
    Sharding check protects. Alias of {!Reach.match_field}. *)

val verifier :
  ?registry:Dip_core.Registry.t ->
  unit ->
  Dip_core.Packet.view ->
  (unit, string) result
(** The static checker in the shape of the engine's [?verify] hook:
    [Ok ()] when {!analyze_view} finds no [Error] diagnostics,
    otherwise the first error rendered as one line. The engine
    memoizes verdicts per cached program keyed on the hook's physical
    identity, so build the hook once and reuse it (as {!process}
    does) rather than making a closure per packet. *)

val registry_gate :
  programs:Dip_bitbuf.Bitbuf.t list ->
  Dip_core.Registry.t ->
  (unit, string) result
(** Publish-time analysis gate for {!Dip_mcore.Snapshot.check}: every
    program must pass {!analyze_packet} against the candidate
    registry with no [Error] (including the Sharding class), or the
    first failure is reported and the snapshot must not be
    published. *)

val process :
  ?verify:bool ->
  registry:Dip_core.Registry.t ->
  Dip_core.Env.t ->
  now:float ->
  ingress:Dip_core.Env.port ->
  Dip_bitbuf.Bitbuf.t ->
  Dip_core.Engine.verdict * Dip_core.Engine.info
(** {!Dip_core.Engine.process} with the static pre-check wired in
    when [verify] is [true] (default [false]): a program that fails
    verification is dropped with reason ["verify: …"] before any FN
    executes. *)

val host_process :
  ?verify:bool ->
  registry:Dip_core.Registry.t ->
  Dip_core.Env.t ->
  now:float ->
  ingress:Dip_core.Env.port ->
  Dip_bitbuf.Bitbuf.t ->
  Dip_core.Engine.verdict * Dip_core.Engine.info

val handler :
  ?verify:bool ->
  registry:Dip_core.Registry.t ->
  Dip_core.Env.t ->
  Dip_netsim.Sim.handler
(** A verifying DIP router as a simulator node — {!Dip_core.Engine.handler}
    behind the {!process} pre-check. *)

val host_handler :
  ?verify:bool ->
  registry:Dip_core.Registry.t ->
  Dip_core.Env.t ->
  Dip_netsim.Sim.handler
