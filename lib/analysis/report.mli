(** Diagnostics of the static FN-program verifier.

    A DIP packet is a tiny program over its FN-locations region
    (§2.2, Algorithm 1); the verifier in {!Dip_analysis} checks such
    a program without executing it and reports its findings here,
    each pinned to an FN index and a bit interval where possible. *)

(** [Error] means Algorithm 1 would misbehave on some node (abort,
    FN-unsupported, racy parallel execution); [Warning] flags a
    program that runs but almost certainly not as intended. *)
type severity = Error | Warning

(** The check classes of the verifier. *)
type check =
  | Parse  (** malformed basic header or FN definition list *)
  | Bounds  (** target slice outside the FN-locations region or the
                16-bit wire fields *)
  | Race  (** write-write / read-write overlap under the §2.2
              parallel flag *)
  | Dependency  (** scratch-mediated dataflow out of order (F_MAC or
                    F_mark before F_parm) *)
  | Key  (** unknown operation key, or one the given registry has
             not installed *)
  | Tag  (** host-tagged FN that silently disables its purpose on
             routers *)
  | Deployment  (** mandatory key missing on an on-path node (§2.4) *)
  | Loop
      (** reachability found a forwarding cycle no hop-limit-
          decrementing FN bounds — only the basic-header hop limit
          stops the packet *)
  | Blackhole
      (** reachability found a node with no route for the (known)
          match value: the packet dies short of [dst] *)
  | Sharding
      (** an FN may rewrite the field {!Dip_mcore.Flow} hashes on, so
          packets of one flow would hash to different mcore workers *)

type diag = {
  severity : severity;
  check : check;
  fn_index : int option;  (** 0-based index into the FN list *)
  field : Dip_bitbuf.Field.t option;
      (** offending bit interval, relative to the locations region *)
  message : string;
}

type t = {
  diags : diag list;
  fn_count : int;  (** FNs the program declares (decoded or not) *)
  depth : int;
      (** statically derived critical-path depth over declared
          access-mode hazards — what a modular-parallel dataplane
          pays with the §2.2 parallel bit set *)
  engine_depth : int;
      (** {!Dip_core.Engine.critical_path}'s conservative
          (overlap-only) estimate, for cross-checking against
          [Engine.info.parallel_depth] *)
}

val error : ?fn_index:int -> ?field:Dip_bitbuf.Field.t -> check -> string -> diag
val warning : ?fn_index:int -> ?field:Dip_bitbuf.Field.t -> check -> string -> diag

val errors : t -> int
val warnings : t -> int

val ok : t -> bool
(** No [Error]-severity diagnostics. *)

val clean : t -> bool
(** No diagnostics at all. *)

val first_error : t -> string option
(** The first [Error] diagnostic rendered as one line — what the
    engine's [~verify] hook reports in its [Dropped] reason. *)

val check_name : check -> string
val check_of_name : string -> check option
(** Inverse of {!check_name}; [None] for an unknown name. Used by the
    corpus runner, whose bad-program files are named
    [<check>--<name>.hex]. *)

val diag_to_json : diag -> string
val to_json : ?label:string -> t -> string
(** Machine-readable report ([dip lint --json]): one JSON object with
    [label], [fn_count], [depth], [engine_depth], [errors],
    [warnings] and a [diags] array. *)

val pp_diag : Format.formatter -> diag -> unit
val pp : Format.formatter -> t -> unit
(** Summary line followed by one indented line per diagnostic. *)
