(** Bit-granular packet buffers.

    DIP Field Operations address header state as [(bit offset, bit
    length)] slices of a shared "FN locations" region (paper §2.2),
    so the substrate must support reads and writes at arbitrary bit
    positions. Bits are numbered MSB-first within each byte — bit 0
    is the most significant bit of byte 0 — matching network wire
    order.

    All accessors raise [Invalid_argument] on out-of-bounds access;
    a router must never silently read past a packet. *)

type t

val create : int -> t
(** [create n] is an [n]-byte buffer of zeros. *)

val of_bytes : bytes -> t
(** Wrap (not copy) an existing byte buffer. *)

val of_string : string -> t
(** Copy a string into a fresh buffer. *)

val to_bytes : t -> bytes
(** The underlying storage (no copy). *)

val to_string : t -> string
(** Copy out as a string. *)

val sub_string : t -> pos:int -> len:int -> string
(** [sub_string t ~pos ~len] copies out only the [len] bytes starting
    at byte [pos] — the bounded read the hot path uses instead of
    stringifying a whole packet. *)

val sub_bytes : t -> pos:int -> len:int -> bytes
(** Like {!sub_string} but returns fresh mutable bytes. *)

val length : t -> int
(** Length in bytes. *)

val bit_length : t -> int
(** Length in bits. *)

val copy : t -> t
(** Deep copy. *)

val blit : src:t -> src_off:int -> dst:t -> dst_off:int -> len:int -> unit
(** Byte-level blit ([len] bytes). *)

(** {1 Single bits} *)

val get_bit : t -> int -> bool
val set_bit : t -> int -> bool -> unit

(** {1 Fixed-width integer fields}

    Big-endian (network order) semantics: the first bit of the field
    is the most significant bit of the value. *)

val get_uint : t -> Field.t -> int64
(** [get_uint t f] reads a field of at most 64 bits. Raises
    [Invalid_argument] if [f.len_bits > 64] or out of bounds. *)

val set_uint : t -> Field.t -> int64 -> unit
(** [set_uint t f v] writes the low [f.len_bits] bits of [v]. Bits of
    [v] above the field width must be zero, else [Invalid_argument] —
    a silent truncation in a router is a bug. *)

val get_uint8 : t -> int -> int
val set_uint8 : t -> int -> int -> unit
val get_uint16 : t -> int -> int
val set_uint16 : t -> int -> int -> unit
val get_uint32 : t -> int -> int32
val set_uint32 : t -> int -> int32 -> unit
val get_uint64 : t -> int -> int64
val set_uint64 : t -> int -> int64 -> unit
(** Byte-offset big-endian accessors for the common aligned cases. *)

(** {1 Arbitrary-width fields}

    Fields wider than 64 bits (e.g. OPT's 128-bit tags, 544-bit
    verification span) are handled as strings: the field value is
    returned as [ceil(len_bits / 8)] bytes, MSB-aligned (the final
    byte is padded with low zero bits when the width is not a
    multiple of 8). *)

val get_field : t -> Field.t -> string
val set_field : t -> Field.t -> string -> unit
(** [set_field t f v] requires [String.length v = ceil(f.len_bits/8)]
    and, for unaligned widths, zero padding bits. *)

val xor_field : t -> Field.t -> string -> unit
(** XOR a value into a field in place — the workhorse of the MAC tag
    update operations. Same width contract as {!set_field}. *)

val equal_field : t -> Field.t -> string -> bool
(** Constant-shape comparison of a field against an expected value. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
(** Hex dump. *)
