type t = { data : bytes }

let create n =
  if n < 0 then invalid_arg "Bitbuf.create: negative size";
  { data = Bytes.make n '\000' }

let of_bytes data = { data }
let of_string s = { data = Bytes.of_string s }
let to_bytes t = t.data
let to_string t = Bytes.to_string t.data

let sub_string t ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length t.data then
    invalid_arg
      (Printf.sprintf "Bitbuf.sub_string: byte range [%d,+%d) exceeds %d-byte \
                       buffer"
         pos len (Bytes.length t.data));
  Bytes.sub_string t.data pos len

let sub_bytes t ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length t.data then
    invalid_arg
      (Printf.sprintf "Bitbuf.sub_bytes: byte range [%d,+%d) exceeds %d-byte \
                       buffer"
         pos len (Bytes.length t.data));
  Bytes.sub t.data pos len

let length t = Bytes.length t.data
let bit_length t = 8 * Bytes.length t.data
let copy t = { data = Bytes.copy t.data }

let blit ~src ~src_off ~dst ~dst_off ~len =
  Bytes.blit src.data src_off dst.data dst_off len

let check_bits t off len =
  if off < 0 || len < 0 || off + len > bit_length t then
    invalid_arg
      (Printf.sprintf "Bitbuf: bit range [%d,+%d) exceeds %d-byte buffer" off
         len (length t))

let get_bit t i =
  check_bits t i 1;
  let byte = Char.code (Bytes.get t.data (i / 8)) in
  byte land (0x80 lsr (i mod 8)) <> 0

let set_bit t i v =
  check_bits t i 1;
  let pos = i / 8 in
  let mask = 0x80 lsr (i mod 8) in
  let byte = Char.code (Bytes.get t.data pos) in
  let byte = if v then byte lor mask else byte land lnot mask in
  Bytes.set t.data pos (Char.chr (byte land 0xff))

(* Chunked big-endian bit reads/writes: each loop step consumes the
   bits remaining in the current byte, so a 64-bit unaligned field
   costs at most nine byte accesses. *)

let get_uint t (f : Field.t) =
  if f.len_bits > 64 then invalid_arg "Bitbuf.get_uint: field wider than 64";
  check_bits t f.off_bits f.len_bits;
  let acc = ref 0L in
  let i = ref 0 in
  while !i < f.len_bits do
    let bitpos = f.off_bits + !i in
    let byte = Char.code (Bytes.unsafe_get t.data (bitpos / 8)) in
    let in_byte = bitpos mod 8 in
    let take = min (8 - in_byte) (f.len_bits - !i) in
    let chunk = (byte lsr (8 - in_byte - take)) land ((1 lsl take) - 1) in
    acc := Int64.logor (Int64.shift_left !acc take) (Int64.of_int chunk);
    i := !i + take
  done;
  !acc

let set_uint t (f : Field.t) v =
  if f.len_bits > 64 then invalid_arg "Bitbuf.set_uint: field wider than 64";
  check_bits t f.off_bits f.len_bits;
  if
    f.len_bits < 64
    && Int64.shift_right_logical v f.len_bits <> 0L
  then invalid_arg "Bitbuf.set_uint: value exceeds field width";
  let i = ref 0 in
  while !i < f.len_bits do
    let bitpos = f.off_bits + !i in
    let pos = bitpos / 8 in
    let in_byte = bitpos mod 8 in
    let take = min (8 - in_byte) (f.len_bits - !i) in
    let shift_v = f.len_bits - !i - take in
    let chunk =
      Int64.to_int (Int64.shift_right_logical v shift_v) land ((1 lsl take) - 1)
    in
    let shift_b = 8 - in_byte - take in
    let mask = ((1 lsl take) - 1) lsl shift_b in
    let byte = Char.code (Bytes.unsafe_get t.data pos) in
    let byte = byte land lnot mask lor (chunk lsl shift_b) in
    Bytes.unsafe_set t.data pos (Char.unsafe_chr (byte land 0xff));
    i := !i + take
  done

let get_uint8 t off = Bytes.get_uint8 t.data off
let set_uint8 t off v = Bytes.set_uint8 t.data off v
let get_uint16 t off = Bytes.get_uint16_be t.data off
let set_uint16 t off v = Bytes.set_uint16_be t.data off v

let get_uint32 t off = Bytes.get_int32_be t.data off
let set_uint32 t off v = Bytes.set_int32_be t.data off v
let get_uint64 t off = Bytes.get_int64_be t.data off
let set_uint64 t off v = Bytes.set_int64_be t.data off v

let field_byte_width (f : Field.t) = (f.len_bits + 7) / 8

let get_field t (f : Field.t) =
  check_bits t f.off_bits f.len_bits;
  if Field.is_byte_aligned f then
    Bytes.sub_string t.data (f.off_bits / 8) (f.len_bits / 8)
  else begin
    let out = Bytes.make (field_byte_width f) '\000' in
    for j = 0 to f.len_bits - 1 do
      if get_bit t (f.off_bits + j) then begin
        let pos = j / 8 in
        let byte = Char.code (Bytes.get out pos) in
        Bytes.set out pos (Char.chr (byte lor (0x80 lsr (j mod 8))))
      end
    done;
    Bytes.unsafe_to_string out
  end

let check_field_value (f : Field.t) v =
  if String.length v <> field_byte_width f then
    invalid_arg
      (Printf.sprintf "Bitbuf: value is %d bytes but field %s needs %d"
         (String.length v)
         (Format.asprintf "%a" Field.pp f)
         (field_byte_width f));
  let pad = (8 - (f.len_bits mod 8)) mod 8 in
  if pad > 0 then begin
    let last = Char.code v.[String.length v - 1] in
    if last land ((1 lsl pad) - 1) <> 0 then
      invalid_arg "Bitbuf: non-zero padding bits in unaligned field value"
  end

let set_field t (f : Field.t) v =
  check_bits t f.off_bits f.len_bits;
  check_field_value f v;
  if Field.is_byte_aligned f then
    Bytes.blit_string v 0 t.data (f.off_bits / 8) (f.len_bits / 8)
  else
    for j = 0 to f.len_bits - 1 do
      let bit = Char.code v.[j / 8] land (0x80 lsr (j mod 8)) <> 0 in
      set_bit t (f.off_bits + j) bit
    done

let xor_field t (f : Field.t) v =
  check_bits t f.off_bits f.len_bits;
  check_field_value f v;
  if Field.is_byte_aligned f then begin
    let base = f.off_bits / 8 in
    for j = 0 to (f.len_bits / 8) - 1 do
      let b = Char.code (Bytes.get t.data (base + j)) lxor Char.code v.[j] in
      Bytes.set t.data (base + j) (Char.chr b)
    done
  end
  else
    for j = 0 to f.len_bits - 1 do
      let bit = Char.code v.[j / 8] land (0x80 lsr (j mod 8)) <> 0 in
      if bit then set_bit t (f.off_bits + j) (not (get_bit t (f.off_bits + j)))
    done

let equal_field t f v = String.equal (get_field t f) v
let equal a b = Bytes.equal a.data b.data
let pp fmt t = Dip_stdext.Hex.dump fmt (to_string t)
