module Bitbuf = Dip_bitbuf.Bitbuf
open Dip_core

type slot = {
  fn : Fn.t;
  impl : Registry.impl;
  target : Dip_bitbuf.Field.t; (* preset absolute slice *)
}

type t = {
  header : Header.t;
  fns : Fn.t array;
  loc_base : int;
  slots : slot list; (* router-side, pre-resolved, in order *)
  shape : string; (* bytes that must match: fn_num, param, FN defs *)
}

let shape_bytes buf (header : Header.t) =
  let s = Bitbuf.to_string buf in
  (* fn_num byte, the 16-bit parameter word, and the FN definition
     region — everything that fixes the preset slices. The hop limit
     and next-header bytes are allowed to vary. *)
  String.concat ""
    [
      String.sub s 1 1;
      String.sub s 3 2;
      String.sub s Header.basic_size (header.Header.fn_num * Fn.size);
    ]

let compile ~registry ~template =
  match Packet.parse template with
  | Error e -> Error e
  | Ok view ->
      let header = view.Packet.header in
      let rec resolve i acc =
        if i = Array.length view.Packet.fns then Ok (List.rev acc)
        else
          let fn = view.Packet.fns.(i) in
          if fn.Fn.tag = Fn.Host then resolve (i + 1) acc
          else
            match Registry.find registry fn.Fn.key with
            | Some impl ->
                let target = Packet.locations_field view fn in
                resolve (i + 1) ({ fn; impl; target } :: acc)
            | None ->
                if Engine.mandatory fn.Fn.key then
                  Error
                    (Printf.sprintf "cannot compile: %s unsupported"
                       (Opkey.name fn.Fn.key))
                else resolve (i + 1) acc
      in
      (match resolve 0 [] with
      | Error e -> Error e
      | Ok slots ->
          Ok
            {
              header;
              fns = view.Packet.fns;
              loc_base = view.Packet.loc_base;
              slots;
              shape = shape_bytes template header;
            })

let fn_count t = List.length t.slots
let keys t = List.map (fun s -> s.fn.Fn.key) t.slots

let matches t buf =
  Bitbuf.length buf >= Header.header_length t.header
  && String.equal t.shape (shape_bytes buf t.header)

(* Mirrors Engine.run's outcome combination; the per-packet parse and
   registry dispatch are gone — that is the point of the ablation. *)
let run t env ~now ~ingress buf =
  if not (matches t buf) then Engine.Dropped "shape-mismatch"
  else begin
    let view =
      {
        Packet.header = { t.header with Header.hop_limit = Bitbuf.get_uint8 buf 2 };
        fns = t.fns;
        loc_base = t.loc_base;
        buf;
      }
    in
    let budget = Guard.start env.Env.guard in
    let scratch = env.Env.scratch in
    scratch.Registry.opt_key <- None;
    let route = ref None in
    let rec loop = function
      | [] -> (
          match !route with
          | Some (`Ports ports) ->
              if Header.decrement_hop_limit buf then Engine.Forwarded ports
              else Engine.Dropped "hop-limit-expired"
          | Some `Local -> Engine.Delivered
          | None -> Engine.Dropped "no-forwarding-decision")
      | slot :: rest -> (
          if not (Guard.charge_op budget) then
            Engine.Dropped "guard-ops-exhausted"
          else
            let ctx =
              {
                Registry.env;
                view;
                fn = slot.fn;
                target = slot.target;
                ingress;
                now;
                scratch;
                budget;
              }
            in
            match slot.impl ctx with
            | Registry.Continue -> loop rest
            | Registry.Set_route ports ->
                if !route = None then route := Some (`Ports ports);
                loop rest
            | Registry.Deliver_local ->
                if !route = None then route := Some `Local;
                loop rest
            | Registry.Respond pkt -> Engine.Responded pkt
            | Registry.Silent -> Engine.Quiet
            | Registry.Abort reason -> Engine.Dropped reason)
    in
    loop t.slots
  end

let estimate t ?alg ?parallel config =
  Cost.estimate config ?alg ?parallel
    ~header_bytes:(Header.header_length t.header)
    (keys t)
