type config = {
  stages_per_pass : int;
  stage_ns : float;
  parse_ns_per_byte : float;
  resubmit_ns : float;
}

let tofino_like =
  { stages_per_pass = 12; stage_ns = 33.0; parse_ns_per_byte = 1.0; resubmit_ns = 100.0 }

type op_cost = { stages : int; extra_passes : int }

let crypto_cost ~alg =
  match alg with
  | Dip_opt.Protocol.EM2 ->
      (* 2EM "can be completed without resubmitting the packet"
         (§4.1): the ARX rounds spread over a few ALU stages. *)
      { stages = 4; extra_passes = 0 }
  | Dip_opt.Protocol.AES ->
      (* "the AES needs to resubmit the packet" (§4.1). *)
      { stages = 4; extra_passes = Dip_crypto.Aes128.passes - 1 }

let op_cost ~alg = function
  | Dip_core.Opkey.F_32_match -> { stages = 1; extra_passes = 0 }
  | Dip_core.Opkey.F_128_match -> { stages = 2; extra_passes = 0 }
  | Dip_core.Opkey.F_source -> { stages = 0; extra_passes = 0 }
  | Dip_core.Opkey.F_fib -> { stages = 2; extra_passes = 0 } (* FIB + PIT insert *)
  | Dip_core.Opkey.F_pit -> { stages = 1; extra_passes = 0 }
  | Dip_core.Opkey.F_parm ->
      (* Table lookup for the local key plus one cipher call for the
         DRKey derivation. *)
      let c = crypto_cost ~alg in
      { stages = 1 + c.stages; extra_passes = c.extra_passes }
  | Dip_core.Opkey.F_mac ->
      (* CBC-MAC over 52 header bytes: 4 blocks + length block. *)
      let c = crypto_cost ~alg in
      { stages = 5 * c.stages; extra_passes = 5 * c.extra_passes }
  | Dip_core.Opkey.F_mark ->
      (* One block over the 16-byte PVF (plus its length block). *)
      let c = crypto_cost ~alg in
      { stages = 2 * c.stages; extra_passes = 2 * c.extra_passes }
  | Dip_core.Opkey.F_ver ->
      (* Host side; a switch would never run it, charge like F_mac. *)
      let c = crypto_cost ~alg in
      { stages = 5 * c.stages; extra_passes = 5 * c.extra_passes }
  | Dip_core.Opkey.F_dag -> { stages = 3; extra_passes = 0 }
  | Dip_core.Opkey.F_intent -> { stages = 1; extra_passes = 0 }
  | Dip_core.Opkey.F_pass -> { stages = 2; extra_passes = 0 }
  | Dip_core.Opkey.F_cc -> { stages = 2; extra_passes = 0 }
  | Dip_core.Opkey.F_tel -> { stages = 1; extra_passes = 0 }
  | Dip_core.Opkey.F_hvf ->
      (* Key derivation plus check plus update: three short MACs. *)
      let c = crypto_cost ~alg in
      { stages = 3 * c.stages; extra_passes = 3 * c.extra_passes }
  | Dip_core.Opkey.F_cust ->
      (* Tag-byte test + store insert (stateful table op) + ACK
         generation via the mirror port. *)
      { stages = 2; extra_passes = 0 }

type estimate = { passes : int; stages_used : int; time_ns : float }

let estimate config ?(alg = Dip_opt.Protocol.EM2) ?(parallel = false)
    ~header_bytes keys =
  if config.stages_per_pass < 1 then invalid_arg "Pisa.Cost.estimate: bad config";
  let costs = List.map (op_cost ~alg) keys in
  let stages_used = List.fold_left (fun a c -> a + c.stages) 0 costs in
  let forced_passes = List.fold_left (fun a c -> a + c.extra_passes) 0 costs in
  let effective_stages =
    if parallel && List.length keys > 1 then
      (* Modular parallelism (refs [31,32]): independent modules run
         in distinct pipeline units; approximate as a 2-way split. *)
      (stages_used + 1) / 2
    else stages_used
  in
  let fit_passes =
    Stdlib.max 1
      ((effective_stages + config.stages_per_pass - 1) / config.stages_per_pass)
  in
  let passes = fit_passes + forced_passes in
  let pipeline_ns =
    float_of_int config.stages_per_pass *. config.stage_ns
  in
  let time_ns =
    (config.parse_ns_per_byte *. float_of_int header_bytes)
    +. (float_of_int passes *. pipeline_ns)
    +. (float_of_int (passes - 1) *. config.resubmit_ns)
  in
  { passes; stages_used = effective_stages; time_ns }
