module Counters = struct
  type t = (string, int ref) Hashtbl.t

  let create () : t = Hashtbl.create 16

  let incr ?(by = 1) t name =
    match Hashtbl.find_opt t name with
    | Some r -> r := !r + by
    | None -> Hashtbl.replace t name (ref by)

  let set t name v =
    match Hashtbl.find_opt t name with
    | Some r -> r := v
    | None -> Hashtbl.replace t name (ref v)

  let get t name = match Hashtbl.find_opt t name with Some r -> !r | None -> 0

  let to_list t =
    Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
end

module Series = struct
  type t = { mutable samples : float list; mutable n : int; mutable sorted : float array option }

  let create () = { samples = []; n = 0; sorted = None }

  let add t x =
    t.samples <- x :: t.samples;
    t.n <- t.n + 1;
    t.sorted <- None

  let count t = t.n

  let mean t =
    if t.n = 0 then 0.0 else List.fold_left ( +. ) 0.0 t.samples /. float_of_int t.n

  let min t = List.fold_left Float.min Float.infinity t.samples
  let max t = List.fold_left Float.max Float.neg_infinity t.samples

  let stddev t =
    if t.n < 2 then 0.0
    else
      let m = mean t in
      let ss = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 t.samples in
      sqrt (ss /. float_of_int (t.n - 1))

  let sorted t =
    match t.sorted with
    | Some a -> a
    | None ->
        let a = Array.of_list t.samples in
        Array.sort Float.compare a;
        t.sorted <- Some a;
        a

  let percentile t p =
    if t.n = 0 then invalid_arg "Stats.Series.percentile: empty series";
    if p < 0.0 || p > 100.0 then
      invalid_arg "Stats.Series.percentile: p out of range";
    let a = sorted t in
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int t.n)) in
    a.(Stdlib.max 0 (Stdlib.min (t.n - 1) (rank - 1)))

  let summary t =
    if t.n = 0 then "n=0"
    else
      Printf.sprintf "n=%d mean=%.3f p50=%.3f p99=%.3f max=%.3f" t.n (mean t)
        (percentile t 50.0) (percentile t 99.0) (max t)
end
