module Counters = struct
  type t = (string, int ref) Hashtbl.t

  let create () : t = Hashtbl.create 16

  let incr ?(by = 1) t name =
    match Hashtbl.find_opt t name with
    | Some r -> r := !r + by
    | None -> Hashtbl.replace t name (ref by)

  let set t name v =
    match Hashtbl.find_opt t name with
    | Some r -> r := v
    | None -> Hashtbl.replace t name (ref v)

  let get t name = match Hashtbl.find_opt t name with Some r -> !r | None -> 0

  let to_list t =
    Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
end

module Series = struct
  (* Bounded memory under unbounded sample streams: count, sum,
     sum-of-squared-deviations (Welford), min and max are maintained
     exactly over every sample; order statistics come from a
     fixed-size uniform reservoir (Vitter's Algorithm R) refreshed
     with a deterministic SplitMix64 stream so runs reproduce. *)
  type t = {
    reservoir : float array;
    mutable n : int; (* total samples observed *)
    mutable sum : float;
    mutable mean_acc : float; (* Welford running mean *)
    mutable m2 : float; (* Welford sum of squared deviations *)
    mutable mn : float;
    mutable mx : float;
    prng : Dip_stdext.Prng.t;
    mutable sorted : float array option; (* sorted reservoir prefix *)
  }

  let default_capacity = 4096

  let create ?(capacity = default_capacity) () =
    if capacity < 1 then invalid_arg "Stats.Series.create: capacity must be >= 1";
    {
      reservoir = Array.make capacity 0.0;
      n = 0;
      sum = 0.0;
      mean_acc = 0.0;
      m2 = 0.0;
      mn = 0.0;
      mx = 0.0;
      prng = Dip_stdext.Prng.create 0x5e12e5_0b5L;
      sorted = None;
    }

  let capacity t = Array.length t.reservoir
  let held t = Stdlib.min t.n (capacity t)

  let add t x =
    let cap = capacity t in
    if t.n < cap then begin
      t.reservoir.(t.n) <- x;
      t.sorted <- None
    end
    else begin
      (* Algorithm R: the (n+1)-th sample replaces a random slot with
         probability cap/(n+1), keeping the reservoir uniform. *)
      let j = Dip_stdext.Prng.int t.prng (t.n + 1) in
      if j < cap then begin
        t.reservoir.(j) <- x;
        t.sorted <- None
      end
    end;
    t.n <- t.n + 1;
    t.sum <- t.sum +. x;
    let delta = x -. t.mean_acc in
    t.mean_acc <- t.mean_acc +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean_acc));
    if t.n = 1 then begin
      t.mn <- x;
      t.mx <- x
    end
    else begin
      if x < t.mn then t.mn <- x;
      if x > t.mx then t.mx <- x
    end

  let count t = t.n
  let mean t = if t.n = 0 then 0.0 else t.sum /. float_of_int t.n
  let min t = t.mn
  let max t = t.mx

  let stddev t =
    if t.n < 2 then 0.0 else sqrt (t.m2 /. float_of_int (t.n - 1))

  let sorted t =
    match t.sorted with
    | Some a -> a
    | None ->
        let a = Array.sub t.reservoir 0 (held t) in
        Array.sort Float.compare a;
        t.sorted <- Some a;
        a

  let percentile t p =
    if t.n = 0 then invalid_arg "Stats.Series.percentile: empty series";
    if p < 0.0 || p > 100.0 then
      invalid_arg "Stats.Series.percentile: p out of range";
    let a = sorted t in
    let k = Array.length a in
    if k = 1 then a.(0)
    else begin
      (* Linear interpolation between order statistics (Hyndman–Fan
         type 7, the R/NumPy default). A ceiling-rank estimator
         degenerates on tiny reservoirs — with k samples every
         p ≥ 100·(k−1)/k collapses onto the max, so a 2-sample
         series reported its maximum as p75, p90 and p99 alike. *)
      let h = float_of_int (k - 1) *. p /. 100.0 in
      let lo = int_of_float (Float.floor h) in
      let hi = Stdlib.min (k - 1) (lo + 1) in
      let frac = h -. float_of_int lo in
      a.(lo) +. (frac *. (a.(hi) -. a.(lo)))
    end

  let summary t =
    if t.n = 0 then "n=0"
    else
      Printf.sprintf "n=%d mean=%.3f p50=%.3f p99=%.3f max=%.3f" t.n (mean t)
        (percentile t 50.0) (percentile t 99.0) (max t)
end
