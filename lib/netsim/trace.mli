(** Packet-journey tracing.

    A trace records, per node, what happened to traffic (received /
    consumed / dropped with reason) with timestamps. Debugging aid
    for examples and experiment post-mortems: render a journey to see
    where a packet died.

    Packets are identified by a caller-chosen fingerprint — by
    default the CRC-32 of the buffer at observation time. Packets
    that are rewritten in flight (TTL decrements etc.) change their
    default fingerprint; pass a [fingerprint] that reads an invariant
    field to follow them across hops.

    Events are indexed by fingerprint, so {!journey} costs only the
    matching packet's events, and the log is bounded: past
    [max_events] new events are counted in {!dropped_events} instead
    of recorded, so a long soak cannot grow the trace without
    bound. *)

type event_kind =
  | Received of Sim.port
  | Consumed
  | Dropped of string

type event = { time : float; node : string; kind : event_kind }

type t

val default_max_events : int
(** 1_000_000. *)

val attach :
  ?fingerprint:(Dip_bitbuf.Bitbuf.t -> int32) ->
  ?max_events:int ->
  Sim.t ->
  t
(** Start recording; local deliveries are captured automatically via
    the simulator's consume hook. Once [max_events] (default
    {!default_max_events}, must be [>= 1]) events have been recorded,
    further events are dropped and counted. *)

val wrap : t -> name:string -> Sim.handler -> Sim.handler
(** Wrap a node's handler (use the same [name] as its
    {!Sim.add_node}) so its receptions and drops are recorded. *)

val events : t -> event list
(** All recorded events in time order (stable for equal
    timestamps). *)

val journey : t -> int32 -> event list
(** Events whose packet fingerprint matched, in time order. Costs
    O(events of that packet), not O(all events). *)

val event_count : t -> int
(** Events currently recorded. *)

val dropped_events : t -> int
(** Events discarded because the [max_events] cap was reached. *)

val pp_events : Format.formatter -> event list -> unit
