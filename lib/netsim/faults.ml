module Prng = Dip_stdext.Prng
module Bitbuf = Dip_bitbuf.Bitbuf

type spec = { drop : float; corrupt : float; duplicate : float; jitter : float }

let check_prob name p =
  if not (Float.is_finite p) || p < 0.0 || p > 1.0 then
    invalid_arg (Printf.sprintf "Faults.spec: %s must be in [0,1]" name)

let spec ?(drop = 0.0) ?(corrupt = 0.0) ?(duplicate = 0.0) ?(jitter = 0.0) () =
  check_prob "drop" drop;
  check_prob "corrupt" corrupt;
  check_prob "duplicate" duplicate;
  if not (Float.is_finite jitter) || jitter < 0.0 then
    invalid_arg "Faults.spec: jitter must be non-negative";
  { drop; corrupt; duplicate; jitter }

let silent = { drop = 0.0; corrupt = 0.0; duplicate = 0.0; jitter = 0.0 }

type event = { time : float; kind : string; node : Sim.node_id; port : Sim.port }

(* Crash bookkeeping: overlapping and nested windows on one node must
   behave as the union of their intervals. [active] counts windows
   currently covering the node; the true pre-crash handler is saved
   only on the 0→1 transition and restored only on the →0 one, so no
   window can ever capture (and later reinstall) the drop handler
   itself. [gen] stamps each crash episode: an end-timer from an
   episode that has already fully restored must not decrement a later
   episode's count. *)
type crash = {
  mutable active : int;
  mutable gen : int;
  mutable saved : Sim.handler option;
}

type t = {
  sim : Sim.t;
  rng : Prng.t;
  mutable default : spec;
  link_specs : (Sim.node_id * Sim.port, spec) Hashtbl.t;
  (* Down windows per directed egress, unordered; the hook scans them
     (links have few windows). *)
  down : (Sim.node_id * Sim.port, (float * float) list) Hashtbl.t;
  crashes : (Sim.node_id, crash) Hashtbl.t;
  (* Link-up subscribers per directed endpoint, looked up when a down
     window actually ends (so registration order doesn't matter). *)
  up_subs : (Sim.node_id * Sim.port, (float -> unit) list ref) Hashtbl.t;
  counters : Stats.Counters.t;
  obs_counters : (string, Dip_obs.Metrics.counter) Hashtbl.t;
  fl_events : (string, Dip_obs.Flight.id) Hashtbl.t;
  mutable events : event list; (* reversed *)
}

let record t ~kind ~node ~port =
  Stats.Counters.incr (Sim.counters t.sim) ("fault." ^ kind);
  Stats.Counters.incr t.counters kind;
  t.events <- { time = Sim.now t.sim; kind; node; port } :: t.events;
  (match Sim.flight t.sim with
  | None -> ()
  | Some r ->
      let id =
        match Hashtbl.find_opt t.fl_events kind with
        | Some id -> id
        | None ->
            let id = Dip_obs.Flight.register ("sim.fault." ^ kind) in
            Hashtbl.replace t.fl_events kind id;
            id
      in
      Dip_obs.Flight.record r id node port 0);
  match Sim.metrics t.sim with
  | None -> ()
  | Some m ->
      let c =
        match Hashtbl.find_opt t.obs_counters kind with
        | Some c -> c
        | None ->
            let c =
              Dip_obs.Metrics.counter m ("sim.fault." ^ kind)
                ~help:"injected simulator faults, by kind"
            in
            Hashtbl.replace t.obs_counters kind c;
            c
      in
      Dip_obs.Metrics.Counter.incr c

let spec_for t key =
  match Hashtbl.find_opt t.link_specs key with
  | Some s -> s
  | None -> t.default

let is_down t key now =
  match Hashtbl.find_opt t.down key with
  | None -> false
  | Some windows -> List.exists (fun (a, b) -> now >= a && now < b) windows

(* Draws happen in a fixed order (drop, corrupt, jitter, duplicate,
   duplicate-jitter) and only for enabled fault kinds, so the stream
   consumption — hence the whole schedule — is a deterministic
   function of (seed, spec, packet sequence). *)
let hook t _sim ~from packet =
  let node, port = from in
  if is_down t from (Sim.now t.sim) then begin
    record t ~kind:"link-down" ~node ~port;
    []
  end
  else begin
    let s = spec_for t from in
    if s.drop > 0.0 && Prng.float t.rng 1.0 < s.drop then begin
      record t ~kind:"drop" ~node ~port;
      []
    end
    else begin
      let packet =
        if s.corrupt > 0.0 && Prng.float t.rng 1.0 < s.corrupt then begin
          (* Corrupt a copy: the sender may retransmit from the same
             buffer, and in-flight duplicates must not share damage. *)
          let p = Bitbuf.copy packet in
          let i = Prng.int t.rng (max 1 (Bitbuf.length p)) in
          if Bitbuf.length p > 0 then
            Bitbuf.set_uint8 p i
              (Bitbuf.get_uint8 p i lxor (1 + Prng.int t.rng 255));
          record t ~kind:"corrupt" ~node ~port;
          p
        end
        else packet
      in
      let draw_jitter () =
        if s.jitter > 0.0 then begin
          let d = Prng.float t.rng s.jitter in
          record t ~kind:"reorder" ~node ~port;
          d
        end
        else 0.0
      in
      let first = { Sim.packet; extra_delay = draw_jitter () } in
      if s.duplicate > 0.0 && Prng.float t.rng 1.0 < s.duplicate then begin
        record t ~kind:"duplicate" ~node ~port;
        [
          first;
          { Sim.packet = Bitbuf.copy packet; extra_delay = draw_jitter () };
        ]
      end
      else [ first ]
    end
  end

let attach ~seed sim =
  let t =
    {
      sim;
      rng = Prng.create seed;
      default = silent;
      link_specs = Hashtbl.create 8;
      down = Hashtbl.create 8;
      crashes = Hashtbl.create 4;
      up_subs = Hashtbl.create 4;
      counters = Stats.Counters.create ();
      obs_counters = Hashtbl.create 8;
      fl_events = Hashtbl.create 8;
      events = [];
    }
  in
  Sim.set_egress_hook sim (hook t);
  t

let detach t = Sim.clear_egress_hook t.sim
let all_links t s = t.default <- s
let on_link t key s = Hashtbl.replace t.link_specs key s

let add_window t key w =
  let ws = Option.value ~default:[] (Hashtbl.find_opt t.down key) in
  Hashtbl.replace t.down key (w :: ws)

let on_link_up t key f =
  let subs =
    match Hashtbl.find_opt t.up_subs key with
    | Some l -> l
    | None ->
        let l = ref [] in
        Hashtbl.replace t.up_subs key l;
        l
  in
  subs := f :: !subs

let fire_link_up t key now =
  match Hashtbl.find_opt t.up_subs key with
  | None -> ()
  | Some subs -> List.iter (fun f -> f now) (List.rev !subs)

let link_down t (node, port) ~from_ ~until =
  if until <= from_ then invalid_arg "Faults.link_down: empty window";
  match Sim.neighbor t.sim node port with
  | None -> invalid_arg "Faults.link_down: unwired port"
  | Some peer ->
      add_window t (node, port) (from_, until);
      add_window t peer (from_, until);
      (* Notify subscribers when this window ends — unless another
         window still covers the endpoint, in which case that
         window's own end will fire. *)
      Sim.schedule t.sim ~at:until (fun sim ->
          let now = Sim.now sim in
          List.iter
            (fun key -> if not (is_down t key now) then fire_link_up t key now)
            [ (node, port); peer ])

let crash_state t node =
  match Hashtbl.find_opt t.crashes node with
  | Some c -> c
  | None ->
      let c = { active = 0; gen = 0; saved = None } in
      Hashtbl.replace t.crashes node c;
      c

let crash_node t node ~at ~until =
  if until <= at then invalid_arg "Faults.crash_node: empty window";
  Sim.schedule t.sim ~at (fun sim ->
      let c = crash_state t node in
      if c.active = 0 then begin
        c.saved <- Some (Sim.node_handler sim node);
        c.gen <- c.gen + 1;
        Sim.set_handler sim node (fun _ ~now:_ ~ingress:_ _ ->
            record t ~kind:"node-crash" ~node ~port:(-1);
            [ Sim.Drop "node-crash" ])
      end;
      c.active <- c.active + 1;
      let gen = c.gen in
      Sim.schedule sim ~at:until (fun sim ->
          if c.gen = gen then begin
            c.active <- c.active - 1;
            if c.active = 0 then begin
              (match c.saved with
              | Some h -> Sim.set_handler sim node h
              | None -> ());
              c.saved <- None
            end
          end))

let events t = List.rev t.events
let counts t = Stats.Counters.to_list t.counters
