(** Measurement collection: counters and latency/size histograms.

    Every experiment harness reports through this module so output
    formats stay uniform across the paper's figures. (Hot-path
    per-packet instrumentation lives in {!Dip_obs.Metrics} instead —
    this module is for experiment-level series and the simulator's
    named counters.) *)

(** A monotonically growing set of named counters. *)
module Counters : sig
  type t

  val create : unit -> t
  val incr : ?by:int -> t -> string -> unit

  val set : t -> string -> int -> unit
  (** Overwrite a counter — for gauges mirrored from elsewhere (e.g.
      per-node cache hit/miss totals). *)

  val get : t -> string -> int
  val to_list : t -> (string * int) list
  (** Sorted by name. *)
end

(** A bounded reservoir of float samples with summary statistics.

    Memory is capped: [count], [mean], [min], [max] and [stddev] are
    exact over {e every} sample ever added (maintained streamingly),
    while order statistics ([percentile], and the p50/p99 of
    [summary]) are computed over a fixed-size uniform random sample
    of the stream (Algorithm R reservoir, deterministic PRNG). Until
    the series exceeds its capacity the reservoir holds everything
    and percentiles are exact; beyond that they are unbiased
    estimates whose resolution degrades gracefully with the
    stream/capacity ratio. *)
module Series : sig
  type t

  val default_capacity : int
  (** 4096 samples — about 32 KiB per series. *)

  val create : ?capacity:int -> unit -> t
  (** [capacity] bounds the reservoir (default
      {!default_capacity}; must be [>= 1]). *)

  val capacity : t -> int
  val add : t -> float -> unit

  val count : t -> int
  (** Total samples added (not the reservoir occupancy). *)

  val mean : t -> float
  (** Exact over all samples; [0.] on an empty series. *)

  val min : t -> float
  (** Exact over all samples; [0.] on an empty series (consistent
      with {!mean} — check {!count} to distinguish "no samples" from
      "samples around zero"). *)

  val max : t -> float
  (** Exact over all samples; [0.] on an empty series. *)

  val stddev : t -> float
  (** Exact sample standard deviation (Welford); [0.] when fewer
      than two samples. *)

  val percentile : t -> float -> float
  (** [percentile s p] with [p] in [\[0,100\]] by linear interpolation
      between order statistics of the sorted {e reservoir}
      (Hyndman–Fan type 7, the R/NumPy default): exact while
      [count s <= capacity s], an unbiased estimate afterwards.
      Interpolation keeps tiny reservoirs honest — with k samples a
      nearest-rank rule would return the max for every
      [p >= 100·(k−1)/k]. Raises [Invalid_argument] on an empty
      series or [p] out of range. *)

  val summary : t -> string
  (** "n=… mean=… p50=… p99=… max=…" one-liner (p50/p99 are
      reservoir estimates, the rest exact). *)
end
