(** Measurement collection: counters and latency/size histograms.

    Every experiment harness reports through this module so output
    formats stay uniform across the paper's figures. *)

(** A monotonically growing set of named counters. *)
module Counters : sig
  type t

  val create : unit -> t
  val incr : ?by:int -> t -> string -> unit

  val set : t -> string -> int -> unit
  (** Overwrite a counter — for gauges mirrored from elsewhere (e.g.
      per-node cache hit/miss totals). *)

  val get : t -> string -> int
  val to_list : t -> (string * int) list
  (** Sorted by name. *)
end

(** A reservoir of float samples with summary statistics. *)
module Series : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  (** 0. on an empty series. *)

  val min : t -> float
  val max : t -> float
  val stddev : t -> float
  val percentile : t -> float -> float
  (** [percentile s p] with [p] in [\[0,100\]] by nearest-rank on the
      sorted samples. Raises [Invalid_argument] on an empty series or
      [p] out of range. *)

  val summary : t -> string
  (** "n=… mean=… p50=… p99=… max=…" one-liner. *)
end
