(** The discrete-event network simulator.

    This is the testbed substitute (DESIGN.md §2): nodes are hosts or
    routers identified by small integers, links connect (node, port)
    pairs with latency and bandwidth, and packets are opaque
    {!Dip_bitbuf.Bitbuf.t} buffers handed to per-node handlers. A
    handler decides, per packet, which ports to forward on, whether
    to consume locally, or to drop.

    The simulation is deterministic: same topology, same injections,
    same handler logic → identical event order. *)

type t
type node_id = int
type port = int

(** What a node does with a received packet. *)
type action =
  | Forward of port * Dip_bitbuf.Bitbuf.t
      (** Transmit (a possibly rewritten) packet out of a port. *)
  | Consume  (** Deliver to the local stack; counted as received. *)
  | Drop of string  (** Discard, with a reason for the counters. *)

type handler = t -> now:float -> ingress:port -> Dip_bitbuf.Bitbuf.t -> action list
(** Invoked once per packet arrival. The handler may also call
    {!schedule} for timers (e.g. PIT expiry sweeps). *)

val create : unit -> t

val add_node : t -> name:string -> handler -> node_id
(** Register a node. Names appear in counters and traces. *)

val node_name : t -> node_id -> string
val node_count : t -> int

val set_handler : t -> node_id -> handler -> unit
(** Replace a node's handler in place (the node keeps its id, name,
    and links). Used by {!Faults} to crash and restart nodes. *)

val node_handler : t -> node_id -> handler
(** The node's current handler — save it before {!set_handler} to be
    able to restore it. *)

val connect :
  t ->
  ?latency:float ->
  ?bandwidth:float ->
  ?queue_capacity:int ->
  node_id * port ->
  node_id * port ->
  unit
(** Bidirectional link. [latency] (seconds, default [1e-6]) is the
    propagation delay; [bandwidth] (bytes/second, default infinite)
    adds a serialization delay of [size / bandwidth] {e and}
    serializes transmissions: a packet must wait for the packets
    ahead of it on the same direction of the link. [queue_capacity]
    (default unbounded) bounds how many packets may be waiting or in
    flight on one direction; beyond it the transmitter drop-tails
    (counted as ["<name>.drop.queue-overflow"]). The capacity bound
    and the in-flight count apply to infinite-bandwidth links too: a
    packet occupies its queue slot from transmit until its departure
    instant (zero serialization time, but same-instant bursts still
    accumulate depth and can overflow). Connecting an already-wired
    port raises [Invalid_argument]. *)

val queue_depth : t -> node_id -> port -> int
(** Packets currently queued or serializing on the egress direction
    of a port (0 for unwired ports) — what an {i F_tel}-style
    telemetry hook reports. *)

val neighbor : t -> node_id -> port -> (node_id * port) option
(** The far end of a link, if wired. *)

val inject : t -> at:float -> node:node_id -> port:port -> Dip_bitbuf.Bitbuf.t -> unit
(** Present a packet to [node] as if it arrived on [port] at [at].
    [port] does not need to be wired — hosts inject on a virtual
    port. *)

val schedule : t -> at:float -> (t -> unit) -> unit
(** Run a callback at simulated time [at]. *)

val now : t -> float
(** Current simulated time (0 before the first event). *)

val run : ?until:float -> t -> unit
(** Process events in order until the queue drains or the clock
    passes [until]. *)

type batch_item = {
  b_node : node_id;
  b_port : port;  (** ingress port *)
  b_time : float;  (** arrival instant *)
  b_packet : Dip_bitbuf.Bitbuf.t;
}

val run_batched :
  ?until:float ->
  ?window:float ->
  t ->
  batchable:(node_id -> bool) ->
  exec:(batch_item array -> action list array) ->
  unit
(** {!run}, except that maximal runs of consecutive arrivals at
    [batchable] nodes spanning at most [window] seconds (default 0 —
    same-instant arrivals only) are collected and handed to [exec]
    as one batch instead of going through the nodes' handlers. This
    is the hook a domain-parallel data plane ({!Dip_mcore}) plugs
    into: [exec] may compute the per-packet action lists on worker
    domains, but the results are {e applied} on the calling domain,
    in arrival order, before any later event runs — so the schedule
    (and hence delivery counts and counters) is a function of
    [window] and the workload only, never of how many domains [exec]
    used. Timer events and arrivals at non-batchable nodes flush the
    pending batch and run normally. [exec] must return exactly one
    action list per item; it must not touch the simulator. *)

val run_pipelined :
  ?until:float ->
  ?window:float ->
  t ->
  batchable:(node_id -> bool) ->
  submit:(batch_item array -> unit -> action list array) ->
  unit
(** {!run_batched} with a double-buffered execution pipeline.
    [submit] hands a window to an asynchronous backend and returns
    the join thunk that blocks for (and yields) its action lists;
    one submitted window may stay in flight while the loop collects
    the next, so with {!Dip_mcore.Pool.dispatch_async} the workers
    chew on window [k] while the dispatcher shards and enqueues
    window [k+1] — the per-window full barrier of {!run_batched}
    becomes a one-window-deep pipeline.

    Scheduling stays deterministic: windows close at the same points
    as {!run_batched} (window span, timers, non-batchable arrivals —
    the latter two also drain the pipeline), results are applied in
    batch order on the calling domain, and none of it depends on
    backend timing. The observable difference from {!run_batched} is
    one window of extra staleness: actions of window [k] are applied
    (and the arrivals they schedule become visible) only after
    window [k+1] closes, so a packet forwarded between two batchable
    nodes joins a window one rotation later than under the barrier
    discipline. Per-flow order at a node is preserved for flows that
    enter the batched set at one point, which is what the flow-hash
    sharding contract needs. *)

val counters : t -> Stats.Counters.t
(** Global counters: per node, ["<name>.rx"], ["<name>.tx"],
    ["<name>.consumed"], ["<name>.drop.<reason>"]. *)

val attach_metrics : t -> Dip_obs.Metrics.t -> unit
(** Mirror simulator activity into a {!Dip_obs.Metrics} registry:
    counters ["sim.tx"] / ["sim.rx"] / ["sim.consumed"] and
    ["sim.drop.<reason>"] (aggregated across nodes — per-node totals
    stay in {!counters}), the ["sim.link.queue_depth"] histogram
    (egress depth observed at each enqueue) and per-link
    ["sim.link.<node>.p<port>.queue_depth"] gauges. The handles are
    resolved once at attach / first use, so per-event cost is an
    integer store. Replaces any previously attached registry. *)

val consumed : t -> (node_id * float * Dip_bitbuf.Bitbuf.t) list
(** All locally delivered packets, in delivery order, with their
    delivery times. *)

val on_consume : t -> (node_id -> float -> Dip_bitbuf.Bitbuf.t -> unit) -> unit
(** Additional hook invoked at each local delivery. *)

val metrics : t -> Dip_obs.Metrics.t option
(** The registry passed to {!attach_metrics}, if any — lets add-on
    layers (e.g. {!Faults}) export into the same registry. *)

type egress = { packet : Dip_bitbuf.Bitbuf.t; extra_delay : float }
(** One transmission produced by an egress hook: the (possibly
    rewritten) packet, plus extra propagation delay in seconds
    (clamped to ≥ 0; does not occupy the egress queue slot, so a
    delayed packet can be overtaken — i.e. reordered). *)

val set_egress_hook :
  t -> (t -> from:node_id * port -> Dip_bitbuf.Bitbuf.t -> egress list) -> unit
(** Install a hook consulted on every transmission over a {e wired}
    link (unwired-port drops bypass it). The hook maps the outgoing
    packet to the transmissions that actually happen: [[]] drops it,
    one entry passes (or corrupts / delays) it, two entries duplicate
    it. Normal queue accounting (capacity, serialization, tx counters)
    applies to each returned entry. Replaces any previous hook. *)

val clear_egress_hook : t -> unit

val set_flight : t -> Dip_obs.Flight.ring option -> unit
(** Arm (or disarm) a flight-recorder ring for simulator-side events,
    written from the domain driving the simulator: per window,
    ["sim.window.submit"] instants (a0 = items, a1 = window sequence
    number) and ["sim.window.apply"] spans (a0 = join+apply ns,
    a1 = items, a2 = window sequence number) from
    {!run_batched} / {!run_pipelined}; {!Faults} additionally records
    ["sim.fault.<kind>"] instants into the same ring. *)

val flight : t -> Dip_obs.Flight.ring option
