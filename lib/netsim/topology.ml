type edge = { u : int; v : int; latency : float; bandwidth : float }
type t = { node_count : int; edges : edge list }

let mk_edge ?(latency = 1e-6) ?(bandwidth = Float.infinity) u v =
  { u; v; latency; bandwidth }

let linear ?latency ?bandwidth n =
  if n < 1 then invalid_arg "Topology.linear: need at least one node";
  {
    node_count = n;
    edges = List.init (n - 1) (fun i -> mk_edge ?latency ?bandwidth i (i + 1));
  }

let star ?latency ?bandwidth k =
  if k < 1 then invalid_arg "Topology.star: need at least one leaf";
  {
    node_count = k + 1;
    edges = List.init k (fun i -> mk_edge ?latency ?bandwidth 0 (i + 1));
  }

let dumbbell ?latency ?bandwidth l r =
  if l < 1 || r < 1 then invalid_arg "Topology.dumbbell: need hosts on both sides";
  let ls = l and rs = l + 1 in
  let left = List.init l (fun i -> mk_edge ?latency ?bandwidth i ls) in
  let right = List.init r (fun i -> mk_edge ?latency ?bandwidth rs (l + 2 + i)) in
  let middle = [ mk_edge ?latency ?bandwidth ls rs ] in
  { node_count = l + r + 2; edges = left @ middle @ right }

let random ~seed ~nodes ~degree =
  if nodes < 2 then invalid_arg "Topology.random: need at least two nodes";
  if degree < 1 then invalid_arg "Topology.random: degree must be positive";
  let g = Dip_stdext.Prng.create seed in
  let have = Hashtbl.create 64 in
  let edges = ref [] in
  let add u v =
    let key = (min u v, max u v) in
    if u <> v && not (Hashtbl.mem have key) then begin
      Hashtbl.replace have key ();
      edges := mk_edge (fst key) (snd key) :: !edges
    end
  in
  (* Spanning backbone: attach each node to a random earlier one. *)
  for v = 1 to nodes - 1 do
    add (Dip_stdext.Prng.int g v) v
  done;
  let target = nodes * degree / 2 in
  let attempts = ref 0 in
  while List.length !edges < target && !attempts < 50 * target do
    incr attempts;
    add (Dip_stdext.Prng.int g nodes) (Dip_stdext.Prng.int g nodes)
  done;
  { node_count = nodes; edges = List.rev !edges }

let fat_tree ?latency ?bandwidth k =
  if k < 2 || k mod 2 <> 0 then
    invalid_arg "Topology.fat_tree: k must be even and >= 2";
  let half = k / 2 in
  let cores = half * half in
  (* Each pod: k/2 aggregation + k/2 edge switches, k/2 hosts per
     edge switch. *)
  let pod_size = k + (half * half) in
  let pod_base p = cores + (p * pod_size) in
  let agg p j = pod_base p + j in
  let edge p j = pod_base p + half + j in
  let host p j i = pod_base p + k + (j * half) + i in
  let edges = ref [] in
  let add u v = edges := mk_edge ?latency ?bandwidth u v :: !edges in
  for p = 0 to k - 1 do
    for j = 0 to half - 1 do
      (* Aggregation switch [j] uplinks to core group [j]. *)
      for i = 0 to half - 1 do
        add ((j * half) + i) (agg p j)
      done;
      (* Full bipartite agg-edge mesh inside the pod. *)
      for j' = 0 to half - 1 do
        add (agg p j) (edge p j')
      done;
      (* Hosts under edge switch [j]. *)
      for i = 0 to half - 1 do
        add (edge p j) (host p j i)
      done
    done
  done;
  { node_count = cores + (k * pod_size); edges = List.rev !edges }

let wan ~seed ~sites ~chords =
  if sites < 3 then invalid_arg "Topology.wan: need at least three sites";
  if chords < 0 then invalid_arg "Topology.wan: negative chord count";
  let g = Dip_stdext.Prng.create seed in
  let have = Hashtbl.create 64 in
  let edges = ref [] in
  let add ~lo ~hi u v =
    let key = (min u v, max u v) in
    if u <> v && not (Hashtbl.mem have key) then begin
      Hashtbl.replace have key ();
      let latency = lo +. Dip_stdext.Prng.float g (hi -. lo) in
      edges := mk_edge ~latency ~bandwidth:10e9 (fst key) (snd key) :: !edges;
      true
    end
    else false
  in
  (* Backbone ring: short regional links. *)
  for i = 0 to sites - 1 do
    ignore (add ~lo:0.005 ~hi:0.030 i ((i + 1) mod sites))
  done;
  (* Long-haul chords: seeded site pairs, intercontinental
     latencies. *)
  let added = ref 0 in
  let attempts = ref 0 in
  while !added < chords && !attempts < 50 * (chords + 1) do
    incr attempts;
    if
      add ~lo:0.020 ~hi:0.080
        (Dip_stdext.Prng.int g sites)
        (Dip_stdext.Prng.int g sites)
    then incr added
  done;
  { node_count = sites; edges = List.rev !edges }

let neighbors t u =
  List.filter_map
    (fun e ->
      if e.u = u then Some e.v else if e.v = u then Some e.u else None)
    t.edges
  |> List.sort_uniq compare

let port_of t u v =
  let ns = neighbors t u in
  let rec idx i = function
    | [] -> raise Not_found
    | x :: _ when x = v -> i
    | _ :: rest -> idx (i + 1) rest
  in
  idx 0 ns

let shortest_paths t ~src =
  if src < 0 || src >= t.node_count then invalid_arg "Topology.shortest_paths";
  let pred = Array.make t.node_count (-1) in
  let seen = Array.make t.node_count false in
  seen.(src) <- true;
  let q = Queue.create () in
  Queue.add src q;
  while not (Queue.is_empty q) do
    let u = Queue.take q in
    List.iter
      (fun v ->
        if not seen.(v) then begin
          seen.(v) <- true;
          pred.(v) <- u;
          Queue.add v q
        end)
      (neighbors t u)
  done;
  pred

let path t ~src ~dst =
  if src < 0 || src >= t.node_count || dst < 0 || dst >= t.node_count then None
  else if src = dst then Some [ src ]
  else
    let pred = shortest_paths t ~src in
    if pred.(dst) = -1 then None
    else
      let rec back v acc =
        if v = src then v :: acc else back pred.(v) (v :: acc)
      in
      Some (back dst [])

let next_hop t ~src ~dst =
  if src = dst then None
  else
    let pred = shortest_paths t ~src in
    if dst < 0 || dst >= t.node_count || pred.(dst) = -1 then None
    else
      (* Walk back from dst to src; the node whose predecessor is src
         is the first hop. *)
      let rec back v = if pred.(v) = src then Some v else back pred.(v) in
      back dst

let instantiate t sim ~name ~handler =
  let ids = Array.init t.node_count (fun i -> Sim.add_node sim ~name:(name i) (handler i)) in
  List.iter
    (fun e ->
      Sim.connect sim ~latency:e.latency ~bandwidth:e.bandwidth
        (ids.(e.u), port_of t e.u e.v)
        (ids.(e.v), port_of t e.v e.u))
    t.edges;
  ids
