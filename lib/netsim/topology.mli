(** Topology builders and route computation.

    Experiments need reproducible topologies: a linear chain for the
    per-hop processing measurements (the paper evaluates OPT with one
    hop, §4.1), a star for fan-in workloads, a dumbbell for congested
    paths, and small random graphs for robustness tests.

    A topology is described abstractly (adjacency with link
    parameters) and then {e instantiated} onto a {!Sim.t} once the
    caller has chosen a handler per node. Port numbers are assigned
    deterministically: node [u]'s port to neighbor [v] is the index
    of [v] in [u]'s sorted adjacency list. *)

type edge = { u : int; v : int; latency : float; bandwidth : float }

type t = { node_count : int; edges : edge list }

val linear : ?latency:float -> ?bandwidth:float -> int -> t
(** [linear n] is a chain of [n] nodes ([n >= 1]):
    0 – 1 – … – (n-1). *)

val star : ?latency:float -> ?bandwidth:float -> int -> t
(** [star k] is a hub (node 0) with [k] leaves (nodes 1..k). *)

val dumbbell : ?latency:float -> ?bandwidth:float -> int -> int -> t
(** [dumbbell l r]: [l] left hosts – left switch – right switch –
    [r] right hosts. Left hosts are nodes [0..l-1], the switches are
    [l] and [l+1], right hosts [l+2 ..]. *)

val random : seed:int64 -> nodes:int -> degree:int -> t
(** A connected random graph: a spanning backbone plus extra edges
    until the average degree target is met. Deterministic in
    [seed]. *)

val fat_tree : ?latency:float -> ?bandwidth:float -> int -> t
(** [fat_tree k] is the canonical k-ary fat-tree data-center fabric
    ([k] even): [(k/2)²] core switches (nodes [0 ..]), then [k] pods
    of [k/2] aggregation + [k/2] edge switches with [k/2] hosts per
    edge switch. Every aggregation switch [j] uplinks to core group
    [j]; agg and edge switches form a full bipartite mesh inside the
    pod. [fat_tree 4] has 4 cores, 16 switches, 16 hosts. *)

val wan : seed:int64 -> sites:int -> chords:int -> t
(** A B4-style inter-datacenter WAN: [sites] sites on a backbone
    ring with regional latencies (5–30 ms) plus [chords] seeded
    long-haul shortcuts (20–80 ms) at 10 Gb/s. Deterministic in
    [seed]. *)

val port_of : t -> int -> int -> int
(** [port_of t u v] is the port on [u] that reaches neighbor [v].
    Raises [Not_found] if the edge does not exist. *)

val neighbors : t -> int -> int list
(** Sorted adjacency list. *)

val shortest_paths : t -> src:int -> int array
(** BFS hop-count predecessor array: [pred.(v)] is the previous hop
    on a shortest path from [src] to [v] ([-1] for [src] itself and
    for unreachable nodes). *)

val next_hop : t -> src:int -> dst:int -> int option
(** First hop on a shortest path from [src] to [dst]; [None] if
    unreachable or [src = dst]. *)

val path : t -> src:int -> dst:int -> int list option
(** The full node sequence [src; …; dst] of a shortest path, [None]
    when [dst] is unreachable (or either endpoint is out of range).
    [path t ~src ~dst = Some [src]] when [src = dst]. This is what
    the deployment checker walks to find on-path nodes missing a
    mandatory operation module (§2.4). *)

val instantiate : t -> Sim.t -> name:(int -> string) -> handler:(int -> Sim.handler) -> Sim.node_id array
(** Add every node to the simulator and wire every edge. Returns the
    simulator ids indexed by topology node. *)
