(** Deterministic fault injection for the simulator.

    Attaches to a {!Sim.t} through its egress hook and handler-swap
    API and injects link-level faults — probabilistic drop, single
    byte corruption, duplication, extra-delay jitter (reordering) —
    plus scheduled link down/up windows and node crash/restart.

    All randomness comes from one {!Dip_stdext.Prng} stream seeded at
    {!attach}: because the simulator's event order is itself
    deterministic, the same seed over the same workload produces a
    byte-identical fault schedule ({!events}). Every injected fault is
    counted in the simulator's {!Sim.counters} (["fault.<kind>"]), in
    {!counts}, and — when {!Sim.attach_metrics} was used — as
    ["sim.fault.<kind>"] counters in the Dip_obs registry. *)

type t

(** Per-egress fault probabilities. All probabilities are per
    transmission, in [\[0, 1\]]; [jitter] is the maximum extra
    propagation delay in seconds (uniform draw in [\[0, jitter)]). *)
type spec = {
  drop : float;
  corrupt : float;  (** XOR a random nonzero value into one random byte. *)
  duplicate : float;  (** Transmit an extra, independently jittered copy. *)
  jitter : float;
}

val spec :
  ?drop:float ->
  ?corrupt:float ->
  ?duplicate:float ->
  ?jitter:float ->
  unit ->
  spec
(** All fields default to 0 (fault disabled). Raises
    [Invalid_argument] on a probability outside [\[0, 1\]] or a
    negative [jitter]. *)

val attach : seed:int64 -> Sim.t -> t
(** Install the fault layer (replaces any existing egress hook). With
    no specs or windows configured it passes every packet through
    untouched. *)

val detach : t -> unit
(** Remove the egress hook. Scheduled windows already in the event
    queue still fire (restoring handlers), but stop injecting. *)

val all_links : t -> spec -> unit
(** Set the default spec applied to every wired egress without a
    per-link override. *)

val on_link : t -> Sim.node_id * Sim.port -> spec -> unit
(** Override the spec for one {e directed} egress (packets leaving
    [node] via [port]). *)

val link_down : t -> Sim.node_id * Sim.port -> from_:float -> until:float -> unit
(** Schedule a down window for the link wired at [(node, port)]:
    within [\[from_, until)] every transmission in {e either}
    direction is dropped (kind ["link-down"]). Raises
    [Invalid_argument] if the port is unwired or the window is
    empty. *)

val on_link_up : t -> Sim.node_id * Sim.port -> (float -> unit) -> unit
(** Subscribe to link-up at a directed endpoint: the callback fires
    (with the current time) whenever a {!link_down} window covering
    [(node, port)] ends and no other window still covers it.
    Subscribers registered after the window was scheduled still
    fire — lookup happens at window end. Multiple subscribers fire
    in registration order. *)

val crash_node : t -> Sim.node_id -> at:float -> until:float -> unit
(** Schedule a crash: at [at] the node's handler is replaced by a
    black hole that drops every arrival (kind ["node-crash"]); when
    the last covering window ends the true pre-crash handler is
    restored. Any state the handler closure held survives — the
    crash models a dataplane outage, not a state wipe. Windows for
    one node may overlap or nest; the node is down for exactly the
    union of its windows. *)

(** One injected fault, in injection order. [port] is [-1] for node
    faults. *)
type event = { time : float; kind : string; node : Sim.node_id; port : Sim.port }

val events : t -> event list
(** Every injected fault so far, oldest first. Two runs with equal
    seeds, topology and workload yield structurally equal lists. *)

val counts : t -> (string * int) list
(** Total faults by kind, sorted by kind name. *)
