type event_kind = Received of Sim.port | Consumed | Dropped of string

type event = { time : float; node : string; kind : event_kind }

(* Events are indexed by packet fingerprint (journeys are the hot
   query) and carry a global sequence number so full-log views keep a
   stable order among same-timestamp events. Per-fingerprint lists
   are reversed (most recent first) for O(1) append. *)
type t = {
  fingerprint : Dip_bitbuf.Bitbuf.t -> int32;
  index : (int32, (int * event) list ref) Hashtbl.t;
  max_events : int;
  mutable nevents : int;
  mutable dropped : int;
  mutable seq : int;
}

let default_fingerprint buf =
  Dip_stdext.Crc32.digest_bytes (Dip_bitbuf.Bitbuf.to_bytes buf)

let default_max_events = 1_000_000

let attach ?(fingerprint = default_fingerprint)
    ?(max_events = default_max_events) sim =
  if max_events < 1 then invalid_arg "Trace.attach: max_events must be >= 1";
  let t =
    {
      fingerprint;
      index = Hashtbl.create 256;
      max_events;
      nevents = 0;
      dropped = 0;
      seq = 0;
    }
  in
  Sim.on_consume sim (fun node time pkt ->
      let fp = t.fingerprint pkt in
      let e = { time; node = Sim.node_name sim node; kind = Consumed } in
      if t.nevents >= t.max_events then t.dropped <- t.dropped + 1
      else begin
        let cell =
          match Hashtbl.find_opt t.index fp with
          | Some c -> c
          | None ->
              let c = ref [] in
              Hashtbl.replace t.index fp c;
              c
        in
        cell := (t.seq, e) :: !cell;
        t.seq <- t.seq + 1;
        t.nevents <- t.nevents + 1
      end);
  t

let record t ~node ~time fp kind =
  if t.nevents >= t.max_events then t.dropped <- t.dropped + 1
  else begin
    let cell =
      match Hashtbl.find_opt t.index fp with
      | Some c -> c
      | None ->
          let c = ref [] in
          Hashtbl.replace t.index fp c;
          c
    in
    cell := (t.seq, { time; node; kind }) :: !cell;
    t.seq <- t.seq + 1;
    t.nevents <- t.nevents + 1
  end

let wrap t ~name inner sim ~now ~ingress packet =
  let fp = t.fingerprint packet in
  record t ~node:name ~time:now fp (Received ingress);
  let actions = inner sim ~now ~ingress packet in
  List.iter
    (fun action ->
      match action with
      | Sim.Drop reason -> record t ~node:name ~time:now fp (Dropped reason)
      | Sim.Forward _ | Sim.Consume -> ())
    actions;
  actions

let by_time evs =
  List.sort
    (fun (sa, a) (sb, b) ->
      match Float.compare a.time b.time with
      | 0 -> Int.compare sa sb
      | c -> c)
    evs
  |> List.map snd

let events t =
  Hashtbl.fold (fun _ cell acc -> List.rev_append !cell acc) t.index []
  |> by_time

let journey t fp =
  match Hashtbl.find_opt t.index fp with
  | None -> []
  | Some cell -> by_time !cell

let event_count t = t.nevents
let dropped_events t = t.dropped

let pp_kind fmt = function
  | Received p -> Format.fprintf fmt "received on port %d" p
  | Consumed -> Format.pp_print_string fmt "consumed"
  | Dropped r -> Format.fprintf fmt "dropped (%s)" r

let pp_events fmt evs =
  List.iter
    (fun e -> Format.fprintf fmt "%.6fs  %-12s %a@." e.time e.node pp_kind e.kind)
    evs
