let paper_packet_sizes = [ 128; 768; 1500 ]

let payload ~seed ~size =
  let g = Dip_stdext.Prng.create seed in
  Dip_stdext.Prng.bytes g size

let pad_to pkt size =
  let len = Dip_bitbuf.Bitbuf.length pkt in
  if len >= size then pkt
  else begin
    let out = Dip_bitbuf.Bitbuf.create size in
    Dip_bitbuf.Bitbuf.blit ~src:pkt ~src_off:0 ~dst:out ~dst_off:0 ~len;
    out
  end

type arrival = { time : float; index : int }

let poisson_arrivals ~seed ~rate ~count =
  if rate <= 0.0 then invalid_arg "Workload.poisson_arrivals: rate must be positive";
  let g = Dip_stdext.Prng.create seed in
  let rec go i t acc =
    if i = count then List.rev acc
    else
      let t = t +. Dip_stdext.Prng.exponential g rate in
      go (i + 1) t ({ time = t; index = i } :: acc)
  in
  go 0 0.0 []

let constant_arrivals ~interval ~count =
  if interval <= 0.0 then
    invalid_arg "Workload.constant_arrivals: interval must be positive";
  List.init count (fun i -> { time = float_of_int i *. interval; index = i })

(* Satellite-pass / mobile contact schedule: the link is up only
   during periodic contact windows ("passes") and down the rest of
   the time. Returns the DOWN windows, ready to feed one by one to
   [Faults.link_down]. With [jitter] > 0 each pass start shifts by a
   seeded uniform draw in [0, jitter) — a mobile node whose contacts
   drift — while windows provably stay disjoint and ordered because
   jitter must leave [period - pass] headroom. *)
let satellite_passes ?(start = 0.0) ?(jitter = 0.0) ?(seed = 0L) ~period ~pass
    ~horizon () =
  if pass <= 0.0 then invalid_arg "Workload.satellite_passes: pass must be positive";
  if period <= pass then
    invalid_arg "Workload.satellite_passes: period must exceed pass";
  if horizon <= 0.0 then
    invalid_arg "Workload.satellite_passes: horizon must be positive";
  if start < 0.0 then invalid_arg "Workload.satellite_passes: negative start";
  if jitter < 0.0 || jitter >= period -. pass then
    invalid_arg "Workload.satellite_passes: jitter must be in [0, period - pass)";
  let g = Dip_stdext.Prng.create seed in
  let rec go k down_from acc =
    let up_from =
      start +. (float_of_int k *. period)
      +. (if jitter > 0.0 then Dip_stdext.Prng.float g jitter else 0.0)
    in
    if up_from >= horizon then
      if down_from < horizon then List.rev ((down_from, horizon) :: acc)
      else List.rev acc
    else
      let acc =
        if up_from > down_from then (down_from, up_from) :: acc else acc
      in
      go (k + 1) (up_from +. pass) acc
  in
  go 0 0.0 []

(* --- At-scale routing workloads ---------------------------------- *)

(* Per-mille weights approximating the public BGP table's
   prefix-length histogram (dominated by /24, with mass at /16-/23),
   plus a small /25-/32 tail so the FIB's spill path is exercised. *)
let v4_len_weights =
  [|
    (8, 6); (10, 4); (12, 10); (14, 12); (16, 70); (17, 25); (18, 40);
    (19, 55); (20, 85); (21, 65); (22, 135); (23, 95); (24, 560);
    (26, 3); (28, 3); (30, 2); (32, 6);
  |]

(* IPv6 global table shape: registry allocations at /32, customer
   sites at /48, a /64 band, and a few host routes. *)
let v6_len_weights =
  [|
    (32, 120); (36, 40); (40, 60); (44, 60); (48, 430); (52, 30);
    (56, 80); (64, 150); (126, 10); (128, 20);
  |]

let draw_len g weights =
  let total = Array.fold_left (fun a (_, w) -> a + w) 0 weights in
  let r = Dip_stdext.Prng.int g total in
  let acc = ref 0 and len = ref (fst weights.(0)) in
  (try
     Array.iter
       (fun (l, w) ->
         acc := !acc + w;
         if r < !acc then begin
           len := l;
           raise Exit
         end)
       weights
   with Exit -> ());
  !len

let mask32 len =
  if len <= 0 then 0l else Int32.shift_left (-1l) (32 - len)

let rand32 g =
  Int32.of_int (Int64.to_int (Dip_stdext.Prng.next64 g) land 0xFFFFFFFF)

let v4_prefixes ~seed ~count =
  if count < 1 then invalid_arg "Workload.v4_prefixes: count must be positive";
  let g = Dip_stdext.Prng.create seed in
  let seen = Hashtbl.create (2 * count) in
  let out = Array.make count (0l, 0) in
  let n = ref 0 in
  while !n < count do
    let len = draw_len g v4_len_weights in
    let addr = Int32.logand (rand32 g) (mask32 len) in
    if not (Hashtbl.mem seen (addr, len)) then begin
      Hashtbl.replace seen (addr, len) ();
      out.(!n) <- (addr, len);
      incr n
    end
  done;
  out

let mask64 n =
  if n <= 0 then 0L else if n >= 64 then -1L else Int64.shift_left (-1L) (64 - n)

let v6_prefixes ~seed ~count =
  if count < 1 then invalid_arg "Workload.v6_prefixes: count must be positive";
  let g = Dip_stdext.Prng.create seed in
  let seen = Hashtbl.create (2 * count) in
  let out = Array.make count ((0L, 0L), 0) in
  let n = ref 0 in
  while !n < count do
    let len = draw_len g v6_len_weights in
    (* Global-unicast-looking addresses: force the top byte to 0x20
       (2000::/3) so the table clusters like a real one. *)
    let hi =
      Int64.logor 0x2000_0000_0000_0000L
        (Int64.logand (Dip_stdext.Prng.next64 g) 0x00FF_FFFF_FFFF_FFFFL)
    in
    let hi = Int64.logand hi (mask64 len) in
    let lo = Int64.logand (Dip_stdext.Prng.next64 g) (mask64 (len - 64)) in
    if not (Hashtbl.mem seen ((hi, lo), len)) then begin
      Hashtbl.replace seen ((hi, lo), len) ();
      out.(!n) <- ((hi, lo), len);
      incr n
    end
  done;
  out

let pareto g ~alpha ~xmin =
  let u = 1.0 -. Dip_stdext.Prng.float g 1.0 in
  xmin *. (u ** (-1.0 /. alpha))

let v4_traffic ~seed ~prefixes ~flows ~packets ~skew =
  let n = Array.length prefixes in
  if n = 0 then invalid_arg "Workload.v4_traffic: empty prefix table";
  if flows < 1 then invalid_arg "Workload.v4_traffic: flows must be positive";
  if packets < 1 then invalid_arg "Workload.v4_traffic: packets must be positive";
  let g = Dip_stdext.Prng.create seed in
  (* Popularity rank -> table slot, via a seeded permutation so the
     popular prefixes are spread across the table rather than
     clustered at its front. *)
  let order = Array.init n (fun i -> i) in
  Dip_stdext.Prng.shuffle g order;
  (* Each flow picks a Zipf-popular prefix and a fixed host inside
     it; flow sizes are heavy-tailed (Pareto, alpha 1.2) so a few
     elephants dominate the bytes while mice dominate the count. *)
  let flow_dst = Array.make flows 0l in
  let flow_w = Array.make flows 0.0 in
  let total_w = ref 0.0 in
  for f = 0 to flows - 1 do
    let rank = Dip_stdext.Prng.zipf g ~n ~s:skew - 1 in
    let addr, len = prefixes.(order.(rank)) in
    let host = Int32.logand (rand32 g) (Int32.lognot (mask32 len)) in
    flow_dst.(f) <- Int32.logor addr host;
    let w = pareto g ~alpha:1.2 ~xmin:1.0 in
    flow_w.(f) <- w;
    total_w := !total_w +. w
  done;
  (* Expand to a packet stream of exactly [packets] destinations,
     proportional to flow weight, then shuffle to interleave. *)
  let stream = Array.make packets 0l in
  let pos = ref 0 in
  for f = 0 to flows - 1 do
    let share =
      max 1 (int_of_float (flow_w.(f) /. !total_w *. float_of_int packets))
    in
    let take = min share (packets - !pos) in
    for _ = 1 to take do
      stream.(!pos) <- flow_dst.(f);
      incr pos
    done
  done;
  while !pos < packets do
    stream.(!pos) <- flow_dst.(Dip_stdext.Prng.int g flows);
    incr pos
  done;
  Dip_stdext.Prng.shuffle g stream;
  stream

let catalog_name k =
  Dip_tables.Name.of_components [ "content"; Printf.sprintf "item%d" k ]

let zipf_names ~seed ~catalog ~count ~skew =
  if catalog < 1 then invalid_arg "Workload.zipf_names: empty catalog";
  let g = Dip_stdext.Prng.create seed in
  List.init count (fun _ -> catalog_name (Dip_stdext.Prng.zipf g ~n:catalog ~s:skew))
