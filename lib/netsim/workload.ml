let paper_packet_sizes = [ 128; 768; 1500 ]

let payload ~seed ~size =
  let g = Dip_stdext.Prng.create seed in
  Dip_stdext.Prng.bytes g size

let pad_to pkt size =
  let len = Dip_bitbuf.Bitbuf.length pkt in
  if len >= size then pkt
  else begin
    let out = Dip_bitbuf.Bitbuf.create size in
    Dip_bitbuf.Bitbuf.blit ~src:pkt ~src_off:0 ~dst:out ~dst_off:0 ~len;
    out
  end

type arrival = { time : float; index : int }

let poisson_arrivals ~seed ~rate ~count =
  if rate <= 0.0 then invalid_arg "Workload.poisson_arrivals: rate must be positive";
  let g = Dip_stdext.Prng.create seed in
  let rec go i t acc =
    if i = count then List.rev acc
    else
      let t = t +. Dip_stdext.Prng.exponential g rate in
      go (i + 1) t ({ time = t; index = i } :: acc)
  in
  go 0 0.0 []

let constant_arrivals ~interval ~count =
  if interval <= 0.0 then
    invalid_arg "Workload.constant_arrivals: interval must be positive";
  List.init count (fun i -> { time = float_of_int i *. interval; index = i })

(* Satellite-pass / mobile contact schedule: the link is up only
   during periodic contact windows ("passes") and down the rest of
   the time. Returns the DOWN windows, ready to feed one by one to
   [Faults.link_down]. With [jitter] > 0 each pass start shifts by a
   seeded uniform draw in [0, jitter) — a mobile node whose contacts
   drift — while windows provably stay disjoint and ordered because
   jitter must leave [period - pass] headroom. *)
let satellite_passes ?(start = 0.0) ?(jitter = 0.0) ?(seed = 0L) ~period ~pass
    ~horizon () =
  if pass <= 0.0 then invalid_arg "Workload.satellite_passes: pass must be positive";
  if period <= pass then
    invalid_arg "Workload.satellite_passes: period must exceed pass";
  if horizon <= 0.0 then
    invalid_arg "Workload.satellite_passes: horizon must be positive";
  if start < 0.0 then invalid_arg "Workload.satellite_passes: negative start";
  if jitter < 0.0 || jitter >= period -. pass then
    invalid_arg "Workload.satellite_passes: jitter must be in [0, period - pass)";
  let g = Dip_stdext.Prng.create seed in
  let rec go k down_from acc =
    let up_from =
      start +. (float_of_int k *. period)
      +. (if jitter > 0.0 then Dip_stdext.Prng.float g jitter else 0.0)
    in
    if up_from >= horizon then
      if down_from < horizon then List.rev ((down_from, horizon) :: acc)
      else List.rev acc
    else
      let acc =
        if up_from > down_from then (down_from, up_from) :: acc else acc
      in
      go (k + 1) (up_from +. pass) acc
  in
  go 0 0.0 []

let catalog_name k =
  Dip_tables.Name.of_components [ "content"; Printf.sprintf "item%d" k ]

let zipf_names ~seed ~catalog ~count ~skew =
  if catalog < 1 then invalid_arg "Workload.zipf_names: empty catalog";
  let g = Dip_stdext.Prng.create seed in
  List.init count (fun _ -> catalog_name (Dip_stdext.Prng.zipf g ~n:catalog ~s:skew))
