type node_id = int
type port = int

type action =
  | Forward of port * Dip_bitbuf.Bitbuf.t
  | Consume
  | Drop of string

type egress = { packet : Dip_bitbuf.Bitbuf.t; extra_delay : float }

type event =
  | Arrival of node_id * port * Dip_bitbuf.Bitbuf.t
  | Timer of (t -> unit)

and handler = t -> now:float -> ingress:port -> Dip_bitbuf.Bitbuf.t -> action list

and node = { name : string; handler : handler }

and link_end = {
  latency : float;
  bandwidth : float;
  capacity : int;
  peer : node_id * port;
  (* Egress serialization state for this direction. *)
  mutable busy_until : float;
  mutable queued : int;
}

(* Optional Dip_obs instrumentation: pre-resolved handles so the
   per-event cost is a couple of field stores; per-reason and
   per-link handles are interned lazily (drops and links are few). *)
and obs = {
  metrics : Dip_obs.Metrics.t;
  tx : Dip_obs.Metrics.counter;
  rx : Dip_obs.Metrics.counter;
  consumed_c : Dip_obs.Metrics.counter;
  qdepth : Dip_obs.Metrics.histogram; (* egress depth at each enqueue *)
  drop_reasons : (string, Dip_obs.Metrics.counter) Hashtbl.t;
  link_gauges : (node_id * port, Dip_obs.Metrics.gauge) Hashtbl.t;
}

and t = {
  mutable nodes : node array;
  mutable nnodes : int;
  links : (node_id * port, link_end) Hashtbl.t;
  queue : event Event_queue.t;
  stats : Stats.Counters.t;
  mutable clock : float;
  mutable delivered : (node_id * float * Dip_bitbuf.Bitbuf.t) list; (* reversed *)
  mutable consume_hooks : (node_id -> float -> Dip_bitbuf.Bitbuf.t -> unit) list;
  mutable obs : obs option;
  (* Consulted on every transmission over a wired link; lets a fault
     layer drop / mangle / duplicate / delay packets without the
     simulator knowing anything about fault policy. *)
  mutable egress_hook :
    (t -> from:node_id * port -> Dip_bitbuf.Bitbuf.t -> egress list) option;
  (* Flight recorder for simulator-side events (window lifecycle,
     fault injections) — always written from the driving domain. *)
  mutable flight : Dip_obs.Flight.ring option;
}

(* Flight event types for the batched window lifecycle. *)
let ev_window_submit = Dip_obs.Flight.register "sim.window.submit"

let ev_window_apply =
  Dip_obs.Flight.register ~kind:Dip_obs.Flight.Span "sim.window.apply"

let create () =
  {
    nodes = [||];
    nnodes = 0;
    links = Hashtbl.create 64;
    queue = Event_queue.create ();
    stats = Stats.Counters.create ();
    clock = 0.0;
    delivered = [];
    consume_hooks = [];
    obs = None;
    egress_hook = None;
    flight = None;
  }

let attach_metrics t metrics =
  let module M = Dip_obs.Metrics in
  t.obs <-
    Some
      {
        metrics;
        tx = M.counter metrics "sim.tx" ~help:"packets transmitted onto links";
        rx = M.counter metrics "sim.rx" ~help:"packet arrivals handled";
        consumed_c =
          M.counter metrics "sim.consumed" ~help:"packets delivered locally";
        qdepth =
          M.histogram metrics "sim.link.queue_depth"
            ~help:"egress queue depth observed at each enqueue";
        drop_reasons = Hashtbl.create 8;
        link_gauges = Hashtbl.create 16;
      }

let obs_drop t reason =
  match t.obs with
  | None -> ()
  | Some o ->
      let c =
        match Hashtbl.find_opt o.drop_reasons reason with
        | Some c -> c
        | None ->
            let c =
              Dip_obs.Metrics.counter o.metrics ("sim.drop." ^ reason)
                ~help:"packets dropped, by reason"
            in
            Hashtbl.replace o.drop_reasons reason c;
            c
      in
      Dip_obs.Metrics.Counter.incr c

(* The per-link gauge tracks the live depth (updated on enqueue and
   dequeue); the histogram samples depth at enqueue only, so its
   count stays one-per-transmission. *)
let obs_link_depth ?(enqueue = false) t ~id ~port ~name depth =
  match t.obs with
  | None -> ()
  | Some o ->
      if enqueue then
        Dip_obs.Metrics.Histogram.observe o.qdepth (float_of_int depth);
      let g =
        match Hashtbl.find_opt o.link_gauges (id, port) with
        | Some g -> g
        | None ->
            let g =
              Dip_obs.Metrics.gauge o.metrics
                (Printf.sprintf "sim.link.%s.p%d.queue_depth" name port)
                ~help:"packets queued or serializing on this egress"
            in
            Hashtbl.replace o.link_gauges (id, port) g;
            g
      in
      Dip_obs.Metrics.Gauge.set g depth

let add_node t ~name handler =
  let node = { name; handler } in
  if t.nnodes = Array.length t.nodes then begin
    let nn = Array.make (max 8 (2 * t.nnodes)) node in
    Array.blit t.nodes 0 nn 0 t.nnodes;
    t.nodes <- nn
  end;
  t.nodes.(t.nnodes) <- node;
  t.nnodes <- t.nnodes + 1;
  t.nnodes - 1

let check_node t id =
  if id < 0 || id >= t.nnodes then invalid_arg "Sim: unknown node id"

let node_name t id =
  check_node t id;
  t.nodes.(id).name

let node_count t = t.nnodes

let connect t ?(latency = 1e-6) ?(bandwidth = Float.infinity)
    ?(queue_capacity = max_int) (a, pa) (b, pb) =
  check_node t a;
  check_node t b;
  if latency < 0.0 then invalid_arg "Sim.connect: negative latency";
  if bandwidth <= 0.0 then invalid_arg "Sim.connect: non-positive bandwidth";
  if queue_capacity < 1 then invalid_arg "Sim.connect: queue capacity";
  if Hashtbl.mem t.links (a, pa) then
    invalid_arg
      (Printf.sprintf "Sim.connect: port %d of %s already wired" pa
         t.nodes.(a).name);
  if Hashtbl.mem t.links (b, pb) then
    invalid_arg
      (Printf.sprintf "Sim.connect: port %d of %s already wired" pb
         t.nodes.(b).name);
  let mk peer =
    { latency; bandwidth; capacity = queue_capacity; peer;
      busy_until = 0.0; queued = 0 }
  in
  Hashtbl.replace t.links (a, pa) (mk (b, pb));
  Hashtbl.replace t.links (b, pb) (mk (a, pa))

let queue_depth t id port =
  match Hashtbl.find_opt t.links (id, port) with
  | Some l -> l.queued
  | None -> 0

let neighbor t id port =
  match Hashtbl.find_opt t.links (id, port) with
  | Some l -> Some l.peer
  | None -> None

let inject t ~at ~node ~port packet =
  check_node t node;
  Event_queue.push t.queue ~time:at (Arrival (node, port, packet))

let schedule t ~at f = Event_queue.push t.queue ~time:at (Timer f)

let now t = t.clock
let counters t = t.stats
let consumed t = List.rev t.delivered
let on_consume t f = t.consume_hooks <- f :: t.consume_hooks
let metrics t = Option.map (fun o -> o.metrics) t.obs
let set_egress_hook t hook = t.egress_hook <- Some hook
let clear_egress_hook t = t.egress_hook <- None
let set_flight t r = t.flight <- r
let flight t = t.flight

let set_handler t id handler =
  check_node t id;
  t.nodes.(id) <- { t.nodes.(id) with handler }

let node_handler t id =
  check_node t id;
  t.nodes.(id).handler

let transmit_on t ~id ~port ~name l ~extra_delay packet =
  if l.queued >= l.capacity then begin
    Stats.Counters.incr t.stats (name ^ ".drop.queue-overflow");
    obs_drop t "queue-overflow"
  end
  else begin
    Stats.Counters.incr t.stats (name ^ ".tx");
    (match t.obs with
    | Some o -> Dip_obs.Metrics.Counter.incr o.tx
    | None -> ());
    let size = float_of_int (Dip_bitbuf.Bitbuf.length packet) in
    let dst, dport = l.peer in
    (* Serialize behind whatever is already on the wire. An
       infinite-bandwidth link serializes in zero time but still
       occupies a queue slot until its departure instant, so the
       capacity check above binds on both kinds of link. *)
    let tx_time =
      if Float.is_finite l.bandwidth then size /. l.bandwidth else 0.0
    in
    let start = Float.max t.clock l.busy_until in
    let departure = start +. tx_time in
    l.busy_until <- departure;
    l.queued <- l.queued + 1;
    obs_link_depth ~enqueue:true t ~id ~port ~name l.queued;
    Event_queue.push t.queue ~time:departure
      (Timer
         (fun _ ->
           l.queued <- l.queued - 1;
           obs_link_depth t ~id ~port ~name l.queued));
    (* [extra_delay] models fault-layer jitter: it delays propagation
       of this one packet without holding the egress queue slot, so a
       delayed packet can be overtaken (reordering). *)
    let delay = Float.max 0.0 extra_delay in
    Event_queue.push t.queue
      ~time:(departure +. l.latency +. delay)
      (Arrival (dst, dport, packet))
  end

let transmit t ~from:(id, port) packet =
  let name = t.nodes.(id).name in
  match Hashtbl.find_opt t.links (id, port) with
  | None ->
      Stats.Counters.incr t.stats (name ^ ".drop.unwired-port");
      obs_drop t "unwired-port"
  | Some l -> (
      (* The hook runs only for wired ports: an unwired-port drop is a
         topology bug, not an injected fault. *)
      match t.egress_hook with
      | None -> transmit_on t ~id ~port ~name l ~extra_delay:0.0 packet
      | Some hook ->
          List.iter
            (fun e ->
              transmit_on t ~id ~port ~name l ~extra_delay:e.extra_delay
                e.packet)
            (hook t ~from:(id, port) packet))

let handle_arrival t id port packet =
  let node = t.nodes.(id) in
  Stats.Counters.incr t.stats (node.name ^ ".rx");
  (match t.obs with
  | Some o -> Dip_obs.Metrics.Counter.incr o.rx
  | None -> ());
  let actions = node.handler t ~now:t.clock ~ingress:port packet in
  List.iter
    (fun action ->
      match action with
      | Forward (out, pkt) -> transmit t ~from:(id, out) pkt
      | Consume ->
          Stats.Counters.incr t.stats (node.name ^ ".consumed");
          (match t.obs with
          | Some o -> Dip_obs.Metrics.Counter.incr o.consumed_c
          | None -> ());
          t.delivered <- (id, t.clock, packet) :: t.delivered;
          List.iter (fun f -> f id t.clock packet) t.consume_hooks
      | Drop reason ->
          Stats.Counters.incr t.stats (node.name ^ ".drop." ^ reason);
          obs_drop t reason)
    actions

let run ?(until = Float.infinity) t =
  let rec loop () =
    match Event_queue.peek_time t.queue with
    | None -> ()
    | Some time when time > until -> ()
    | Some _ -> (
        match Event_queue.pop t.queue with
        | None -> ()
        | Some (time, ev) ->
            t.clock <- time;
            (match ev with
            | Arrival (id, port, packet) -> handle_arrival t id port packet
            | Timer f -> f t);
            loop ())
  in
  loop ()

(* --- batched execution ------------------------------------------- *)

type batch_item = {
  b_node : node_id;
  b_port : port;
  b_time : float;
  b_packet : Dip_bitbuf.Bitbuf.t;
}

(* Apply one batched item's results exactly as [handle_arrival] would
   have: clock rewound to the item's arrival instant, rx accounting,
   then the actions. *)
let apply_batch_result t item actions =
  t.clock <- item.b_time;
  let node = t.nodes.(item.b_node) in
  Stats.Counters.incr t.stats (node.name ^ ".rx");
  (match t.obs with
  | Some o -> Dip_obs.Metrics.Counter.incr o.rx
  | None -> ());
  List.iter
    (fun action ->
      match action with
      | Forward (out, pkt) -> transmit t ~from:(item.b_node, out) pkt
      | Consume ->
          Stats.Counters.incr t.stats (node.name ^ ".consumed");
          (match t.obs with
          | Some o -> Dip_obs.Metrics.Counter.incr o.consumed_c
          | None -> ());
          t.delivered <- (item.b_node, t.clock, item.b_packet) :: t.delivered;
          List.iter (fun f -> f item.b_node t.clock item.b_packet) t.consume_hooks
      | Drop reason ->
          Stats.Counters.incr t.stats (node.name ^ ".drop." ^ reason);
          obs_drop t reason)
    actions

(* The shared batched event loop. [submit] hands a closed window to
   the execution backend and returns a join thunk producing the
   per-item action lists; [depth] bounds how many submitted windows
   may stay {e unapplied} while the loop keeps collecting. Depth 0 is
   the classic barrier (submit, join, apply, continue); depth 1 is
   the double-buffered pipeline — window [k] executes on the backend
   while window [k+1] is collected and submitted, and [k] is joined
   only when [k+1] closes. Results are always applied in batch order
   on the calling domain, so everything a handler could observe
   sequentially is a function of the workload and the windowing
   discipline only — never of backend scheduling. *)
let run_submitted ~who ?(until = Float.infinity) ?(window = 0.0) ~depth t
    ~batchable ~submit =
  if window < 0.0 then invalid_arg (who ^ ": negative window");
  (* The pending batch, newest first, plus the time of its oldest
     member (the window anchor). *)
  let pending = ref [] in
  let npending = ref 0 in
  let anchor = ref 0.0 in
  (* Submitted-but-unapplied windows, oldest first; never more than
     [depth] long after a [flush]. *)
  let inflight = Queue.create () in
  (* Window sequence number, for correlating the submit instant with
     the apply span on the flight timeline. *)
  let wseq = ref 0 in
  let apply_oldest () =
    let arr, seq, join = Queue.pop inflight in
    let t0 =
      match t.flight with None -> 0 | Some _ -> Dip_obs.Flight.now ()
    in
    let results = join () in
    if Array.length results <> Array.length arr then
      invalid_arg (who ^ ": exec returned a mismatched array");
    (* Results are applied in arrival order, so everything a
       handler could observe sequentially (per-link serialization,
       counters, consume order) is independent of how the backend
       scheduled the work. *)
    Array.iteri (fun i item -> apply_batch_result t item results.(i)) arr;
    match t.flight with
    | None -> ()
    | Some r ->
        Dip_obs.Flight.record r ev_window_apply
          (Dip_obs.Flight.now () - t0)
          (Array.length arr) seq
  in
  let drain () =
    while not (Queue.is_empty inflight) do
      apply_oldest ()
    done
  in
  let flush () =
    (match !pending with
    | [] -> ()
    | items ->
        let arr = Array.make !npending (List.hd items) in
        List.iteri (fun i item -> arr.(!npending - 1 - i) <- item) items;
        pending := [];
        npending := 0;
        let seq = !wseq in
        incr wseq;
        (match t.flight with
        | None -> ()
        | Some r ->
            Dip_obs.Flight.record r ev_window_submit (Array.length arr) seq 0);
        Queue.push (arr, seq, submit arr) inflight);
    while Queue.length inflight > depth do
      apply_oldest ()
    done
  in
  let idle () = !npending = 0 && Queue.is_empty inflight in
  let rec loop () =
    match Event_queue.peek t.queue with
    | None ->
        (* Flushing/applying the tail can schedule new events;
           re-enter so they run rather than being stranded. *)
        if not (idle ()) then begin
          flush ();
          drain ();
          loop ()
        end
    | Some (time, _) when time > until ->
        (* Same: a flush can schedule events at or before [until]. *)
        if not (idle ()) then begin
          flush ();
          drain ();
          loop ()
        end
    | Some (time, ev) ->
        let batchable_ev =
          match ev with Arrival (id, _, _) -> batchable id | Timer _ -> false
        in
        let joins =
          batchable_ev && (!npending = 0 || time <= !anchor +. window)
        in
        if joins then begin
          (match Event_queue.pop t.queue with
          | Some (time, Arrival (id, port, packet)) ->
              if !npending = 0 then anchor := time;
              pending :=
                { b_node = id; b_port = port; b_time = time;
                  b_packet = packet }
                :: !pending;
              incr npending
          | Some _ | None -> assert false);
          loop ()
        end
        else if batchable_ev && !npending > 0 then begin
          (* Window boundary at a batchable node: rotate the pipeline.
             The closing window is submitted and only windows beyond
             [depth] are joined — with depth 1 this is where the
             overlap happens: the arrival re-peeks and opens window
             [k+1] while window [k] still executes. *)
          flush ();
          loop ()
        end
        else if not (idle ()) then begin
          (* A timer or non-batchable arrival must observe every
             batched effect before it runs: its handler may read state
             the batches write, and the applications may schedule
             earlier events than this one. Close the window, drain the
             pipeline, re-peek. *)
          flush ();
          drain ();
          loop ()
        end
        else begin
          (match Event_queue.pop t.queue with
          | None -> ()
          | Some (time, ev) -> (
              match ev with
              | Arrival (id, port, packet) ->
                  t.clock <- time;
                  handle_arrival t id port packet
              | Timer f ->
                  t.clock <- time;
                  f t));
          loop ()
        end
  in
  loop ()

let run_batched ?until ?window t ~batchable ~exec =
  run_submitted ~who:"Sim.run_batched" ?until ?window ~depth:0 t ~batchable
    ~submit:(fun arr ->
      let results = exec arr in
      fun () -> results)

let run_pipelined ?until ?window t ~batchable ~submit =
  run_submitted ~who:"Sim.run_pipelined" ?until ?window ~depth:1 t ~batchable
    ~submit
