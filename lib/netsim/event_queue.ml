(* Slots are a variant rather than bare cells so that vacated heap
   positions can be reset to [Empty]: a popped cell left reachable at
   t.heap.(t.len) would pin its payload (a whole packet buffer) until
   some later push overwrites the slot — a space leak on long soak
   runs. The inline record keeps a push at one allocation, same as
   the previous bare-record representation. *)
type 'a slot =
  | Empty
  | Cell of { time : float; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a slot array;
  mutable len : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; len = 0; next_seq = 0 }
let size t = t.len
let is_empty t = t.len = 0

let earlier a b =
  match (a, b) with
  | Cell a, Cell b -> a.time < b.time || (a.time = b.time && a.seq < b.seq)
  | Empty, _ | _, Empty -> invalid_arg "Event_queue: empty slot in heap"

let grow t =
  let cap = Array.length t.heap in
  if t.len = cap then begin
    let nh = Array.make (max 16 (2 * cap)) Empty in
    Array.blit t.heap 0 nh 0 t.len;
    t.heap <- nh
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if earlier t.heap.(i) t.heap.(parent) then begin
      let tmp = t.heap.(i) in
      t.heap.(i) <- t.heap.(parent);
      t.heap.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.len && earlier t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.len && earlier t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = t.heap.(i) in
    t.heap.(i) <- t.heap.(!smallest);
    t.heap.(!smallest) <- tmp;
    sift_down t !smallest
  end

let push t ~time payload =
  if not (Float.is_finite time) then
    invalid_arg "Event_queue.push: time must be finite";
  if time < 0.0 then invalid_arg "Event_queue.push: negative time";
  let c = Cell { time; seq = t.next_seq; payload } in
  t.next_seq <- t.next_seq + 1;
  grow t;
  t.heap.(t.len) <- c;
  t.len <- t.len + 1;
  sift_up t (t.len - 1)

let pop t =
  if t.len = 0 then None
  else
    match t.heap.(0) with
    | Empty -> invalid_arg "Event_queue: empty slot in heap"
    | Cell top ->
        t.len <- t.len - 1;
        if t.len > 0 then begin
          t.heap.(0) <- t.heap.(t.len);
          t.heap.(t.len) <- Empty;
          sift_down t 0
        end
        else t.heap.(0) <- Empty;
        Some (top.time, top.payload)

let peek_time t =
  if t.len = 0 then None
  else match t.heap.(0) with Empty -> None | Cell c -> Some c.time

let peek t =
  if t.len = 0 then None
  else
    match t.heap.(0) with
    | Empty -> None
    | Cell c -> Some (c.time, c.payload)

let vacant_slots_cleared t =
  let ok = ref true in
  for i = t.len to Array.length t.heap - 1 do
    match t.heap.(i) with Empty -> () | Cell _ -> ok := false
  done;
  !ok

let clear t =
  t.heap <- [||];
  t.len <- 0
