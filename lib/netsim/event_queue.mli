(** A priority queue of timestamped events — the heart of the
    discrete-event simulator that stands in for the paper's hardware
    testbed (see DESIGN.md §2).

    Ordering is by time, ties broken by insertion order so that the
    simulation is fully deterministic. *)

type 'a t

val create : unit -> 'a t
val size : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> time:float -> 'a -> unit
(** Schedule an event. [time] must be finite and non-negative. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest event. *)

val peek_time : 'a t -> float option
(** Time of the earliest event without removing it. *)

val peek : 'a t -> (float * 'a) option
(** The earliest event without removing it — what a batching run
    loop inspects to decide whether the head joins the current
    batch. *)

val vacant_slots_cleared : 'a t -> bool
(** [true] iff no slot beyond the live heap still holds a popped
    event. Always [true] for a correct implementation — exposed so
    tests can assert that popping does not retain dead payloads. *)

val clear : 'a t -> unit
