(** Synthetic workload generators.

    The paper evaluates with fixed-size packets (128, 768 and 1500
    bytes, §4.2); richer experiments in this repository additionally
    use Poisson arrivals and Zipf-distributed content popularity.
    Every generator is deterministic in its seed. *)

val paper_packet_sizes : int list
(** The three sizes of Figure 2: [\[128; 768; 1500\]]. *)

val payload : seed:int64 -> size:int -> bytes
(** [size] pseudo-random payload bytes. *)

val pad_to : Dip_bitbuf.Bitbuf.t -> int -> Dip_bitbuf.Bitbuf.t
(** [pad_to pkt size] extends a header buffer with zero payload up
    to [size] bytes total (returns the input unchanged if already at
    least that long). Models "a header plus enough payload to reach
    the wire size". *)

type arrival = { time : float; index : int }

val poisson_arrivals : seed:int64 -> rate:float -> count:int -> arrival list
(** [count] arrivals with exponential inter-arrival times at [rate]
    packets/second, starting at time 0. *)

val constant_arrivals : interval:float -> count:int -> arrival list
(** Evenly spaced arrivals. *)

val satellite_passes :
  ?start:float ->
  ?jitter:float ->
  ?seed:int64 ->
  period:float ->
  pass:float ->
  horizon:float ->
  unit ->
  (float * float) list
(** A satellite-pass / mobile contact schedule for one link: contact
    windows of length [pass] begin at [start + k*period] (plus a
    seeded uniform draw in [\[0, jitter)] per pass when [jitter] is
    set); the link is {e down} outside them. Returns the down
    windows covering [\[0, horizon)], in order, ready for
    {!Faults.link_down}. Requires [0 < pass < period],
    [jitter < period - pass]. Deterministic in [seed]. *)

val v4_prefixes :
  seed:int64 -> count:int -> (Dip_tables.Ipaddr.V4.t * int) array
(** [count] distinct IPv4 [(address, length)] prefixes drawn from a
    BGP-like prefix-length histogram (≈56% /24, mass at /16–/23, a
    small /25–/32 tail) with uniform random address bits.
    Deterministic in [seed]; host bits below the prefix length are
    zero. *)

val v6_prefixes :
  seed:int64 -> count:int -> (Dip_tables.Ipaddr.V6.t * int) array
(** [count] distinct IPv6 prefixes shaped like the global v6 table
    (registry /32s, customer /48s, a /64 band, a few host routes),
    confined to 2000::/3. Deterministic in [seed]. *)

val v4_traffic :
  seed:int64 ->
  prefixes:(Dip_tables.Ipaddr.V4.t * int) array ->
  flows:int ->
  packets:int ->
  skew:float ->
  Dip_tables.Ipaddr.V4.t array
(** A destination-address stream of exactly [packets] packets over
    [flows] distinct flows. Each flow targets a fixed host inside a
    Zipf([skew])-popular prefix of [prefixes]; per-flow packet counts
    are heavy-tailed (Pareto, α = 1.2) and the stream is shuffled so
    flows interleave. Every destination matches some table entry, so
    a FIB benchmark driven by this stream measures hit-path lookup
    cost. Deterministic in [seed]. *)

val zipf_names :
  seed:int64 -> catalog:int -> count:int -> skew:float -> Dip_tables.Name.t list
(** [count] content names drawn from a [catalog]-item corpus
    ["/content/item<k>"] with Zipf(skew) popularity — the standard
    NDN request model. *)

val catalog_name : int -> Dip_tables.Name.t
(** The canonical name of catalog item [k]. *)
