(* An [Atomic.t] made with [Atomic.make] is a one-field mutable block
   ([%makemutable]); [Atomic.get]/[set]/[fetch_and_add] operate on
   field 0 and never look at the block size. Re-housing the value in
   a 15-field block of the same tag therefore preserves the atomic
   semantics while guaranteeing that the value word and the 14 words
   after it belong to this object alone: with 8-word (64-byte) cache
   lines on a 64-bit target, whatever the block's alignment, no
   neighbouring allocation shares the value word's line. This is the
   same trick multicore libraries ship as [copy_as_padded]. *)

let padding_words = 15

let atomic_int v =
  let b = Obj.new_block 0 padding_words in
  (* [Obj.new_block] initializes fields to the unit immediate, so the
     block is GC-safe before and after this store. *)
  Obj.set_field b 0 (Obj.repr (v : int));
  (Obj.obj b : int Atomic.t)
