type 'a t = {
  slots : 'a option array;
  mask : int;
  head : int Atomic.t; (* consumer cursor: next slot to pop *)
  tail : int Atomic.t; (* producer cursor: next slot to fill *)
  lock : Mutex.t;
  nonempty : Condition.t;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Spsc.create: capacity must be >= 1";
  let cap = ref 1 in
  while !cap < capacity do
    cap := !cap * 2
  done;
  {
    slots = Array.make !cap None;
    mask = !cap - 1;
    head = Atomic.make 0;
    tail = Atomic.make 0;
    lock = Mutex.create ();
    nonempty = Condition.create ();
  }

let capacity t = t.mask + 1
let size t = Atomic.get t.tail - Atomic.get t.head
let is_empty t = size t = 0

let push t v =
  let tail = Atomic.get t.tail in
  if tail - Atomic.get t.head > t.mask then false
  else begin
    t.slots.(tail land t.mask) <- Some v;
    (* Release store: publishes the slot write to the consumer. *)
    Atomic.set t.tail (tail + 1);
    Mutex.lock t.lock;
    Condition.signal t.nonempty;
    Mutex.unlock t.lock;
    true
  end

let pop t =
  let head = Atomic.get t.head in
  if Atomic.get t.tail = head then None
  else begin
    let v = t.slots.(head land t.mask) in
    t.slots.(head land t.mask) <- None;
    Atomic.set t.head (head + 1);
    v
  end

(* No lost wakeup: if the producer pushes between our failed [pop] and
   taking the lock, the re-check under the lock sees the ring
   non-empty and skips the wait. *)
let rec pop_wait t ~stop =
  match pop t with
  | Some _ as v -> v
  | None ->
      if stop () then None
      else begin
        Mutex.lock t.lock;
        if is_empty t && not (stop ()) then Condition.wait t.nonempty t.lock;
        Mutex.unlock t.lock;
        pop_wait t ~stop
      end

let wake t =
  Mutex.lock t.lock;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.lock
