(* One side of the ring: the cursor the owner publishes plus the
   owner's private snapshot of the *opposing* cursor. The snapshot is
   the fast-path trick: the producer only needs a fresh [head] when
   the ring looks full against its stale copy, and the consumer only
   needs a fresh [tail] when it looks empty — so steady-state push
   and pop each touch one foreign cache line almost never instead of
   once per operation. The pad fields stretch the record to a full
   64-byte line so the two sides' [cache] words (written by different
   domains) cannot share one. *)
type side = {
  cursor : int Atomic.t; (* padded block; owner stores, opponent loads *)
  mutable cache : int; (* owner-private snapshot of the opposing cursor *)
  mutable pad0 : int;
  mutable pad1 : int;
  mutable pad2 : int;
  mutable pad3 : int;
  mutable pad4 : int;
}
[@@warning "-69"] (* the pad fields are written once and never read *)

type 'a t = {
  slots : 'a option array;
  mask : int;
  consumer : side; (* cursor = head: next slot to pop *)
  producer : side; (* cursor = tail: next slot to fill *)
  lock : Mutex.t;
  nonempty : Condition.t;
  waiting : bool Atomic.t; (* consumer has announced it will park *)
}

let mk_side () =
  { cursor = Pad.atomic_int 0; cache = 0;
    pad0 = 0; pad1 = 0; pad2 = 0; pad3 = 0; pad4 = 0 }

let create ~capacity =
  if capacity < 1 then invalid_arg "Spsc.create: capacity must be >= 1";
  let cap = ref 1 in
  while !cap < capacity do
    cap := !cap * 2
  done;
  {
    slots = Array.make !cap None;
    mask = !cap - 1;
    consumer = mk_side ();
    producer = mk_side ();
    lock = Mutex.create ();
    nonempty = Condition.create ();
    waiting = Atomic.make false;
  }

let capacity t = t.mask + 1

(* Both cursors are monotone (each is stored only by its owner, only
   incremented), and [head <= tail] always. Loading [head] first
   makes the difference non-negative: the [tail] we then load is at
   least the [tail] that bounded the [head] we already hold. The
   producer may still advance [tail] between the two loads, so the
   raw difference can exceed the capacity by however much the
   consumer drained meanwhile — clamp to the ring bound. (Loading in
   the other order is the classic bug: a pop between the loads makes
   the difference negative.) *)
let size t =
  let head = Atomic.get t.consumer.cursor in
  let tail = Atomic.get t.producer.cursor in
  Stdlib.max 0 (Stdlib.min (tail - head) (t.mask + 1))

let is_empty t =
  (* Exact, not clamped: a single load pair suffices for the
     consumer-side emptiness probe. *)
  Atomic.get t.producer.cursor - Atomic.get t.consumer.cursor <= 0

let wake t =
  Mutex.lock t.lock;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.lock

let push t v =
  let p = t.producer in
  let tail = Atomic.get p.cursor in
  if
    tail - p.cache > t.mask
    && (p.cache <- Atomic.get t.consumer.cursor;
        tail - p.cache > t.mask)
  then false
  else begin
    t.slots.(tail land t.mask) <- Some v;
    (* Release store: publishes the slot write to the consumer. *)
    Atomic.set p.cursor (tail + 1);
    (* Uncontended fast path: no lock, no signal. The flag load is
       ordered after the cursor store (both seq_cst), pairing with
       the consumer's flag-store-then-emptiness-check in [pop_wait];
       one of the two sides always sees the other. *)
    if Atomic.get t.waiting then wake t;
    true
  end

let pop t =
  let c = t.consumer in
  let head = Atomic.get c.cursor in
  if
    head = c.cache
    && (c.cache <- Atomic.get t.producer.cursor;
        head = c.cache)
  then None
  else begin
    let v = t.slots.(head land t.mask) in
    t.slots.(head land t.mask) <- None;
    Atomic.set c.cursor (head + 1);
    v
  end

(* No lost wakeup: the consumer sets [waiting] under the lock before
   its final emptiness check; the producer's post-push flag load is
   ordered after its cursor store. Either the producer sees the flag
   and signals (under the lock, so not before the consumer is in
   [Condition.wait]), or the consumer's final check sees the new
   cursor and skips the wait. *)
let rec pop_wait ?(spin = 0) t ~stop =
  match pop t with
  | Some _ as v -> v
  | None ->
      if stop () then None
      else begin
        (* Spin briefly before parking: a producer mid-burst refills
           the ring in far less than a futex round trip. The caller
           sizes [spin] to the machine — zero when domains outnumber
           cores, where spinning would steal the producer's CPU. *)
        let budget = ref spin in
        let result = ref None in
        while Option.is_none !result && !budget > 0 && not (stop ()) do
          Domain.cpu_relax ();
          decr budget;
          result := pop t
        done;
        match !result with
        | Some _ as v -> v
        | None ->
            if stop () then None
            else begin
              Mutex.lock t.lock;
              Atomic.set t.waiting true;
              if is_empty t && not (stop ()) then
                Condition.wait t.nonempty t.lock;
              Atomic.set t.waiting false;
              Mutex.unlock t.lock;
              pop_wait ~spin t ~stop
            end
      end
