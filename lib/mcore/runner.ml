module Sim = Dip_netsim.Sim

let run_parallel ?until ?window sim ~pools =
  let tbl = Hashtbl.create (List.length pools * 2) in
  List.iter (fun (node, pool) -> Hashtbl.replace tbl node pool) pools;
  Sim.run_batched ?until ?window sim
    ~batchable:(fun node -> Hashtbl.mem tbl node)
    ~exec:(fun batch ->
      let out = Array.make (Array.length batch) [] in
      (* Group the batch per node, preserving arrival order within
         each group. *)
      let groups = Hashtbl.create 4 in
      Array.iteri
        (fun i it ->
          let node = it.Sim.b_node in
          let prev = Option.value (Hashtbl.find_opt groups node) ~default:[] in
          Hashtbl.replace groups node (i :: prev))
        batch;
      Hashtbl.iter
        (fun node rev_idxs ->
          let idxs = Array.of_list (List.rev rev_idxs) in
          let pool = Hashtbl.find tbl node in
          let items =
            Array.map
              (fun i ->
                let it = batch.(i) in
                {
                  Pool.now = it.Sim.b_time;
                  ingress = it.Sim.b_port;
                  pkt = it.Sim.b_packet;
                })
              idxs
          in
          let actions = Pool.handle_batch pool items in
          Array.iteri (fun k i -> out.(i) <- actions.(k)) idxs)
        groups;
      out)
