module Sim = Dip_netsim.Sim

let run_parallel ?until ?window sim ~pools =
  let tbl = Hashtbl.create (List.length pools * 2) in
  List.iter (fun (node, pool) -> Hashtbl.replace tbl node pool) pools;
  Sim.run_pipelined ?until ?window sim
    ~batchable:(fun node -> Hashtbl.mem tbl node)
    ~submit:(fun batch ->
      (* Group the batch per node, preserving arrival order within
         each group. *)
      let groups = Hashtbl.create 4 in
      Array.iteri
        (fun i it ->
          let node = it.Sim.b_node in
          let prev = Option.value (Hashtbl.find_opt groups node) ~default:[] in
          Hashtbl.replace groups node (i :: prev))
        batch;
      (* Dispatch every node's share before awaiting any: all pools
         chew on this window concurrently, and the window itself
         overlaps the simulator collecting the next one (the
         [run_pipelined] double buffer). *)
      let dispatched =
        Hashtbl.fold
          (fun node rev_idxs acc ->
            let idxs = Array.of_list (List.rev rev_idxs) in
            let pool = Hashtbl.find tbl node in
            let items =
              Array.map
                (fun i ->
                  let it = batch.(i) in
                  {
                    Pool.now = it.Sim.b_time;
                    ingress = it.Sim.b_port;
                    pkt = it.Sim.b_packet;
                  })
                idxs
            in
            (pool, idxs, Pool.dispatch_async pool ~want_actions:true items)
            :: acc)
          groups []
      in
      fun () ->
        let out = Array.make (Array.length batch) [] in
        List.iter
          (fun (pool, idxs, ticket) ->
            let _verdicts, actions = Pool.await pool ticket in
            Array.iteri (fun k i -> out.(i) <- actions.(k)) idxs)
          dispatched;
        out)
