module Bitbuf = Dip_bitbuf.Bitbuf
module Header = Dip_core.Header
module Opkey = Dip_core.Opkey
module Registry = Dip_core.Registry
module Crc32 = Dip_stdext.Crc32

let fold = Int32.to_int

(* Fallback when there is no parsable forwarding FN: hash everything.
   Deterministic, just without the same-flow-same-worker guarantee
   (there is no flow to speak of). *)
let whole buf =
  fold (Crc32.digest_bytes (Bitbuf.to_bytes buf)) land max_int

(* The absolute bit range of the first FN whose operation key is
   declared [forwarding] — the target field that decides where the
   packet goes. Read from the raw triples; a full Fn.decode per
   packet would defeat the point of hashing before parsing. *)
let match_field buf =
  match Header.decode buf with
  | Error _ -> None
  | Ok h ->
      if Header.header_length h > Bitbuf.length buf then None
      else begin
        let rec find i =
          if i >= h.Header.fn_num then None
          else
            let pos = Header.fn_offset i in
            match Opkey.of_int (Bitbuf.get_uint16 buf (pos + 4) land 0x7fff) with
            | Some k when (Registry.access k).Registry.forwarding ->
                Some (Bitbuf.get_uint16 buf pos, Bitbuf.get_uint16 buf (pos + 2))
            | _ -> find (i + 1)
        in
        match find 0 with
        | None -> None
        | Some (loc_bits, len_bits) ->
            if len_bits = 0 then None
            else
              Some
                (Dip_bitbuf.Field.v
                   ~off_bits:((8 * Header.locations_offset h) + loc_bits)
                   ~len_bits)
      end

let hash buf =
  match match_field buf with
  | None -> whole buf
  | Some f ->
      (* Hash the bytes covering the target-field bit range. Byte
         granularity over-covers by at most 7 bits on each side —
         harmless, since it is the same bytes for every packet of the
         flow. *)
      let first, byte_len = Dip_bitbuf.Field.byte_span f in
      let last = Stdlib.min (first + byte_len) (Bitbuf.length buf) in
      if first < 0 || first >= last then whole buf
      else
        fold (Crc32.digest_sub (Bitbuf.to_bytes buf) ~pos:first ~len:(last - first))
        land max_int

let shard buf ~workers = if workers <= 1 then 0 else hash buf mod workers
