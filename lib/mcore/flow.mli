(** Flow hashing for worker sharding — the software analogue of NIC
    receive-side scaling.

    Per-flow state (the PIT, the OPT session tables, NetFence flow
    counters) lives in per-worker {!Dip_core.Env.t}s, so correctness
    requires that every packet of a flow lands on the same worker.
    The flow identity of a DIP packet is its {e match field}: the
    target field of the first forwarding FN (F_32_match's
    destination address, F_FIB/F_PIT's content name, F_DAG's DAG) —
    exactly the bytes the forwarding decision reads, so two packets
    that forward alike hash alike.

    The hash is CRC-32 over those bytes. It is a pure function of
    the packet contents: sharding is deterministic across runs and
    across pool sizes, which is what makes the N-domain simulator
    reproducible. *)

val match_field : Dip_bitbuf.Bitbuf.t -> Dip_bitbuf.Field.t option
(** The absolute bit range of the first forwarding FN's target — the
    flow identity {!hash} digests (byte-rounded) and the invariant
    {!Dip_analysis}'s Sharding check protects: no FN may rewrite
    these bits with node-local or packet-derived data, or per-flow
    worker affinity breaks. [None] when the header does not parse or
    no forwarding FN exists ({!hash} then covers the whole buffer). *)

val hash : Dip_bitbuf.Bitbuf.t -> int
(** [hash pkt] is a non-negative flow hash. Packets whose DIP header
    does not parse, or with no forwarding FN, hash over the whole
    buffer (still deterministic, no sharding benefit). *)

val shard : Dip_bitbuf.Bitbuf.t -> workers:int -> int
(** [hash pkt mod workers] ([0] when [workers <= 1]). *)
