module Bitbuf = Dip_bitbuf.Bitbuf
module Engine = Dip_core.Engine
module Env = Dip_core.Env
module Obs = Dip_core.Obs
module Progcache = Dip_core.Progcache
module Metrics = Dip_obs.Metrics
module Counters = Dip_netsim.Stats.Counters
module F = Dip_obs.Flight

type item = { now : float; ingress : Env.port; pkt : Bitbuf.t }

(* Flight event types for the hand-off pipeline. Ring layout: a pool
   with [flight] armed owns [ndomains + 1] rings — index 0 is the
   dispatcher lane (tid 0: dispatch / await / publish), index [w + 1]
   is worker [w]'s lane (tid [w + 1]: queue-wait / execute / engine /
   progcache / GC). Every ring has exactly one writing domain; a
   1-domain pool's dispatcher writes lanes 0 and 1 itself (it {e is}
   worker 0). *)
let ev_dispatch = F.register ~kind:F.Span "pool.dispatch"
let ev_queue_wait = F.register ~kind:F.Span "pool.queue_wait"
let ev_execute = F.register ~kind:F.Span "pool.execute"
let ev_await = F.register ~kind:F.Span "pool.await"
let ev_publish = F.register "pool.publish"
let ev_gc_minor = F.register ~kind:F.Counter "gc.minor_collections"
let ev_gc_promoted = F.register ~kind:F.Counter "gc.promoted_words"

(* Everything a worker reads per batch, swapped as one pointer
   (RCU-style): treat all of it as immutable once published. The
   per-worker parse hints live here, not in the worker, because a
   hint pins entries of its epoch's program caches — swapping the
   world must swap the hints with it. *)
type published = {
  snap : Snapshot.t;
  envs : Env.t array;
  obses : Obs.t option array;
  metricses : Metrics.t option array;
  hints : Progcache.hint array;
}

(* One dispatch's completion: a countdown over its live jobs. The
   dispatcher spins briefly then parks; the worker that brings the
   count to zero takes the lock and broadcasts — one lock/broadcast
   per dispatch, not per job, and none at all when the dispatcher is
   still spinning. *)
type completion = {
  pending : int Atomic.t; (* padded: decremented from every worker *)
  c_lock : Mutex.t;
  c_done : Condition.t;
}

(* One unit of work handed to a worker: its shard of a caller batch.
   [j_idxs.(k)] is where [j_items.(k)]'s result goes in the caller's
   arrays, so workers write results directly into caller-order slots
   and the dispatcher never reshuffles. The record and its item/index
   arrays are persistent per-(ticket, worker) scratch — a dispatch
   writes fields, the worker reads them, and [await] resets them for
   reuse; nothing here is allocated per dispatch except the caller's
   result arrays. *)
type job = {
  mutable j_items : item array; (* first [j_count] entries valid *)
  mutable j_idxs : int array;
  mutable j_count : int;
  mutable j_verdicts : (Engine.verdict * Engine.info) array; (* caller-indexed *)
  mutable j_actions : Dip_netsim.Sim.action list array; (* caller-indexed; [||] if unwanted *)
  mutable j_want_actions : bool;
  mutable j_pub : published; (* pinned at dispatch time: the RCU contract *)
  mutable j_submit_ns : int; (* flight: dispatch stamp for queue-wait *)
  j_comp : completion;
}

(* A dispatch in flight: per-worker jobs plus the sharding scratch,
   recycled through a free list so the hand-off hot path allocates
   only the result arrays it must hand to the caller. *)
type ticket = {
  jobs : job array; (* one per worker *)
  mutable shard_of : int array; (* scratch, grown to the batch size *)
  counts : int array; (* per-worker item counts for this dispatch *)
  fill : int array;
  comp : completion;
  mutable t_verdicts : (Engine.verdict * Engine.info) array;
  mutable t_actions : Dip_netsim.Sim.action list array;
}

type t = {
  ndomains : int;
  current : published Atomic.t;
  rings : job Spsc.t array;
  stop : bool Atomic.t;
  mutable doms : unit Domain.t array;
  with_metrics : bool;
  obs_sample_every : int option;
  spin : int; (* busy-poll budget for workers and the dispatcher *)
  mutable free_tickets : ticket list; (* dispatcher-domain private *)
  (* Counters/metrics of retired epochs, absorbed at publish time so
     a configuration swap does not silently zero the pool's history
     (the epoch's envs die with it otherwise). *)
  acc_counters : Counters.t;
  acc_metrics : Metrics.t option;
  (* Flight lanes (see the ring-layout comment above); all [None]
     when the recorder is off, so the hot paths pay one array read. *)
  fl_rings : F.ring option array; (* length ndomains + 1 *)
  (* Epoch-swap visibility for the Metrics exporters. *)
  pub_counter : Metrics.counter option;
  epoch_gauge : Metrics.gauge option;
  (* Per-worker GC gauges, registered once in [acc_metrics] (gauges in
     per-epoch registries would double-count absolute readings when
     retired epochs are absorbed). Each gauge has exactly one writer:
     its worker's domain. *)
  gc_gauges : (Metrics.gauge * Metrics.gauge) option array;
}

(* [flights] are the worker lanes (slots 1.. of [fl_rings]): arming a
   worker's observer and program cache routes engine spans and cache
   events into that worker's private ring. An armed recorder forces
   per-worker observers even without [metrics] (the engine only
   records spans through an [Obs.t]); their registries then stay
   private scratch. *)
let build_published ?sample_every ~metrics ~flights snap ndomains =
  let metricses =
    Array.init ndomains (fun _ -> if metrics then Some (Metrics.create ()) else None)
  in
  let obses =
    Array.init ndomains (fun w ->
        match (metricses.(w), flights.(w)) with
        | None, None -> None
        | m_opt, fl ->
            let m =
              match m_opt with Some m -> m | None -> Metrics.create ()
            in
            Some (Obs.create ?sample_every ?flight:fl m))
  in
  let envs = Array.init ndomains snap.Snapshot.mk_env in
  Array.iteri
    (fun w env -> Progcache.set_flight env.Env.prog_cache flights.(w))
    envs;
  let hints = Array.init ndomains (fun _ -> Progcache.hint ()) in
  { snap; envs; obses; metricses; hints }

(* Per-batch GC visibility from the executing domain: the absolute
   minor-collection and promoted-word readings as flight counters
   (the timeline shows exactly which windows a collection landed in)
   and, when metrics are on, as the worker's gauges. *)
let note_gc t w fl =
  if fl <> None || t.gc_gauges.(w) <> None then begin
    let s = Gc.quick_stat () in
    let minors = s.Gc.minor_collections in
    let promoted = int_of_float s.Gc.promoted_words in
    (match fl with
    | Some r ->
        F.record r ev_gc_minor minors w 0;
        F.record r ev_gc_promoted promoted w 0
    | None -> ());
    match t.gc_gauges.(w) with
    | Some (gm, gp) ->
        Metrics.Gauge.set gm minors;
        Metrics.Gauge.set gp promoted
    | None -> ()
  end

let worker t w =
  let stop () = Atomic.get t.stop in
  let ring = t.rings.(w) in
  let fl = t.fl_rings.(w + 1) in
  let rec loop () =
    match Spsc.pop_wait ~spin:t.spin ring ~stop with
    | None -> ()
    | Some job ->
        (* The world was pinned into the job when it was dispatched:
           a publish between dispatch and this pop must not retarget
           an in-flight batch (snapshot.mli's RCU contract). *)
        let pub = job.j_pub in
        let env = pub.envs.(w) in
        let t0 =
          match fl with
          | None -> 0
          | Some r ->
              let n = F.now () in
              F.record r ev_queue_wait (n - job.j_submit_ns) job.j_count 0;
              n
        in
        let b =
          Engine.batch_start ?obs:pub.obses.(w)
            ?verify:pub.snap.Snapshot.verify ~hint:pub.hints.(w)
            ~registry:pub.snap.Snapshot.registry env
        in
        let items = job.j_items and idxs = job.j_idxs in
        for k = 0 to job.j_count - 1 do
          let it = items.(k) in
          let ((verdict, _) as r) =
            Engine.batch_step b ~now:it.now ~ingress:it.ingress it.pkt
          in
          let i = idxs.(k) in
          job.j_verdicts.(i) <- r;
          if job.j_want_actions then
            job.j_actions.(i) <-
              Engine.actions_of_verdict env ~ingress:it.ingress it.pkt verdict
        done;
        Engine.batch_finish b;
        (match fl with
        | None -> ()
        | Some r -> F.record r ev_execute (F.now () - t0) job.j_count 0);
        note_gc t w fl;
        (* After the decrement the dispatcher may reclaim the job as
           scratch — the job must not be touched again. Only the last
           job of the dispatch pays the lock/broadcast, and only to
           cover a dispatcher that gave up spinning and parked. *)
        let comp = job.j_comp in
        if Atomic.fetch_and_add comp.pending (-1) = 1 then begin
          Mutex.lock comp.c_lock;
          Condition.broadcast comp.c_done;
          Mutex.unlock comp.c_lock
        end;
        loop ()
  in
  loop ()

(* Spin only when every spinner can have a core to itself alongside
   the dispatcher; on an oversubscribed box a busy-poll steals the
   CPU of the very domain it is waiting on, which is how the PR-5
   pool lost to sequential even at one domain. *)
let spin_budget ~domains =
  if Domain.recommended_domain_count () > domains then 4096 else 0

let create ?(queue_capacity = 64) ?(metrics = false) ?obs_sample_every ?flight
    ?flight_capacity ~domains snap =
  if domains < 1 then invalid_arg "Pool.create: domains must be >= 1";
  (match Snapshot.validate snap with
  | Ok () -> ()
  | Error e -> invalid_arg ("Pool.create: " ^ e));
  let fl_rings =
    match flight with
    | None -> Array.make (domains + 1) None
    | Some pid ->
        Array.init (domains + 1) (fun tid ->
            Some (F.create ?capacity:flight_capacity ~pid ~tid ()))
  in
  let acc_metrics = if metrics then Some (Metrics.create ()) else None in
  let t =
    {
      ndomains = domains;
      current =
        Atomic.make
          (build_published ?sample_every:obs_sample_every ~metrics
             ~flights:(Array.sub fl_rings 1 domains) snap domains);
      rings = Array.init domains (fun _ -> Spsc.create ~capacity:queue_capacity);
      stop = Atomic.make false;
      doms = [||];
      with_metrics = metrics;
      obs_sample_every;
      spin = spin_budget ~domains;
      free_tickets = [];
      acc_counters = Counters.create ();
      acc_metrics;
      fl_rings;
      pub_counter =
        Option.map
          (fun m ->
            Metrics.counter m "pool.publish.count"
              ~help:"configuration epochs published over the pool's lifetime")
          acc_metrics;
      epoch_gauge =
        Option.map
          (fun m ->
            Metrics.gauge m "pool.epoch"
              ~help:"epoch of the currently published snapshot")
          acc_metrics;
      gc_gauges =
        Array.init domains (fun w ->
            Option.map
              (fun m ->
                ( Metrics.gauge m
                    (Printf.sprintf "pool.worker%d.gc.minor_collections" w)
                    ~help:"minor collections on the worker's domain",
                  Metrics.gauge m
                    (Printf.sprintf "pool.worker%d.gc.promoted_words" w)
                    ~help:
                      "words promoted to the major heap on the worker's domain"
                ))
              acc_metrics);
    }
  in
  (match t.epoch_gauge with
  | Some g -> Metrics.Gauge.set g snap.Snapshot.epoch
  | None -> ());
  (* A 1-worker pool runs every batch on the dispatching domain (see
     [dispatch_async]), so spawning its worker would only buy GC
     synchronization: each minor collection must handshake with the
     parked domain's backup thread, which on a busy single core costs
     far more than the batch work it interrupts. No domain, no tax. *)
  if domains > 1 then
    t.doms <- Array.init domains (fun w -> Domain.spawn (fun () -> worker t w));
  t

let domains t = t.ndomains
let epoch t = (Atomic.get t.current).snap.Snapshot.epoch

(* Fold one epoch's per-worker counters/metrics into the pool-lifetime
   accumulators. Called on the retiring world at publish time; exact
   when the pool is quiescent (between synchronous dispatches — the
   normal control-plane case). A batch still in flight on the retiring
   epoch keeps executing it (jobs pin their world) but increments it
   writes after this absorption die with the epoch. *)
let absorb_published t pub =
  Array.iter
    (fun env ->
      List.iter
        (fun (k, v) -> Counters.incr ~by:v t.acc_counters k)
        (Counters.to_list env.Env.counters))
    pub.envs;
  match t.acc_metrics with
  | None -> ()
  | Some acc ->
      Array.iter
        (function
          | None -> () | Some m -> Metrics.absorb acc (Metrics.snapshot m))
        pub.metricses

(* The snapshot's own gate runs first: an unsound registry never
   reaches the epoch swap, and the previous snapshot keeps serving. *)
let publish t snap =
  Snapshot.publish snap ~via:(fun snap ->
      let next =
        build_published ?sample_every:t.obs_sample_every ~metrics:t.with_metrics
          ~flights:(Array.sub t.fl_rings 1 t.ndomains) snap t.ndomains
      in
      let retired = Atomic.exchange t.current next in
      absorb_published t retired;
      (match t.pub_counter with
      | Some c -> Metrics.Counter.incr c
      | None -> ());
      (match t.epoch_gauge with
      | Some g -> Metrics.Gauge.set g snap.Snapshot.epoch
      | None -> ());
      match t.fl_rings.(0) with
      | Some r ->
          F.record r ev_publish snap.Snapshot.epoch
            retired.snap.Snapshot.epoch 0
      | None -> ())

let nil_info =
  { Engine.ops_run = 0; ops_skipped = 0; state_bytes = 0; parallel_depth = 0 }

let nil_item = { now = 0.0; ingress = 0; pkt = Bitbuf.of_string "" }

let new_ticket t =
  let comp =
    { pending = Pad.atomic_int 0; c_lock = Mutex.create ();
      c_done = Condition.create () }
  in
  let pub = Atomic.get t.current in
  {
    jobs =
      Array.init t.ndomains (fun _ ->
          {
            j_items = [||];
            j_idxs = [||];
            j_count = 0;
            j_verdicts = [||];
            j_actions = [||];
            j_want_actions = false;
            j_pub = pub;
            j_submit_ns = 0;
            j_comp = comp;
          });
    shard_of = [||];
    counts = Array.make t.ndomains 0;
    fill = Array.make t.ndomains 0;
    comp;
    t_verdicts = [||];
    t_actions = [||];
  }

let take_ticket t =
  match t.free_tickets with
  | tk :: rest ->
      t.free_tickets <- rest;
      tk
  | [] -> new_ticket t

let dispatch_async t ~want_actions items =
  let n = Array.length items in
  let tk = take_ticket t in
  let fl0 = t.fl_rings.(0) in
  let d0 = match fl0 with None -> 0 | Some _ -> F.now () in
  let verdicts = Array.make n (Engine.Quiet, nil_info) in
  let actions = if want_actions then Array.make n [] else [||] in
  tk.t_verdicts <- verdicts;
  tk.t_actions <- actions;
  if n = 0 then Atomic.set tk.comp.pending 0
  else if t.ndomains = 1 then begin
    (* Run-to-completion: a one-worker pool {e is} the dispatcher.
       There is no parallelism to win by crossing a domain boundary,
       only the ring transfer plus (on a box where the two domains
       share a core) two scheduler round trips per batch — which is
       exactly how the PR-5 pool lost to sequential at one domain.
       Worker 0's environment, hint and observer are used so results,
       counters and caching are indistinguishable from the ring path;
       the (parked) worker domain never touches them. *)
    let pub = Atomic.get t.current in
    let env = pub.envs.(0) in
    let fl1 = t.fl_rings.(1) in
    let x0 = match fl1 with None -> 0 | Some _ -> F.now () in
    let b =
      Engine.batch_start ?obs:pub.obses.(0) ?verify:pub.snap.Snapshot.verify
        ~hint:pub.hints.(0) ~registry:pub.snap.Snapshot.registry env
    in
    for i = 0 to n - 1 do
      let it = items.(i) in
      let ((verdict, _) as r) =
        Engine.batch_step b ~now:it.now ~ingress:it.ingress it.pkt
      in
      verdicts.(i) <- r;
      if want_actions then
        actions.(i) <-
          Engine.actions_of_verdict env ~ingress:it.ingress it.pkt verdict
    done;
    Engine.batch_finish b;
    (* The dispatcher {e is} worker 0 here, so the execute span lands
       on worker 0's lane, written from the only domain there is. *)
    (match fl1 with
    | None -> ()
    | Some r -> F.record r ev_execute (F.now () - x0) n 0);
    note_gc t 0 fl1;
    Atomic.set tk.comp.pending 0
  end
  else begin
    (* Pin the world once for the whole dispatch: every job of this
       batch executes this epoch, whatever publishes land before the
       workers get to it. *)
    let pub = Atomic.get t.current in
    (* Shard by flow hash; stable within a worker, so per-flow
       arrival order is preserved. *)
    if Array.length tk.shard_of < n then tk.shard_of <- Array.make n 0;
    let shard_of = tk.shard_of and counts = tk.counts and fill = tk.fill in
    Array.fill counts 0 t.ndomains 0;
    for i = 0 to n - 1 do
      let w = Flow.shard items.(i).pkt ~workers:t.ndomains in
      shard_of.(i) <- w;
      counts.(w) <- counts.(w) + 1
    done;
    let live = ref 0 in
    for w = 0 to t.ndomains - 1 do
      if counts.(w) > 0 then begin
        incr live;
        let j = tk.jobs.(w) in
        if Array.length j.j_items < counts.(w) then begin
          let cap = Stdlib.max counts.(w) (2 * Array.length j.j_items) in
          j.j_items <- Array.make cap nil_item;
          j.j_idxs <- Array.make cap 0
        end;
        j.j_count <- counts.(w);
        j.j_verdicts <- verdicts;
        j.j_actions <- actions;
        j.j_want_actions <- want_actions;
        j.j_pub <- pub;
        fill.(w) <- 0
      end
    done;
    for i = 0 to n - 1 do
      let w = shard_of.(i) in
      let j = tk.jobs.(w) in
      j.j_items.(fill.(w)) <- items.(i);
      j.j_idxs.(fill.(w)) <- i;
      fill.(w) <- fill.(w) + 1
    done;
    (* One submit stamp for the whole dispatch: each worker's
       queue-wait span measures pop time minus this. *)
    (match fl0 with
    | None -> ()
    | Some _ ->
        let s = F.now () in
        for w = 0 to t.ndomains - 1 do
          if counts.(w) > 0 then tk.jobs.(w).j_submit_ns <- s
        done);
    (* The countdown must be armed before the first push: a fast
       worker may finish its job before the later pushes happen. *)
    Atomic.set tk.comp.pending !live;
    for w = 0 to t.ndomains - 1 do
      if counts.(w) > 0 then
        (* The ring holds batches, not packets; it only fills if the
           caller outruns the worker by [queue_capacity] whole
           batches, so backing off is fine. *)
        while not (Spsc.push t.rings.(w) tk.jobs.(w)) do
          Domain.cpu_relax ()
        done
    done;
    match fl0 with
    | None -> ()
    | Some r -> F.record r ev_dispatch (F.now () - d0) n !live
  end;
  tk

let await t tk =
  let comp = tk.comp in
  let fl0 = t.fl_rings.(0) in
  let a0 = match fl0 with None -> 0 | Some _ -> F.now () in
  let budget = ref t.spin in
  while Atomic.get comp.pending > 0 && !budget > 0 do
    Domain.cpu_relax ();
    decr budget
  done;
  let blocked = Atomic.get comp.pending > 0 in
  if blocked then begin
    Mutex.lock comp.c_lock;
    while Atomic.get comp.pending > 0 do
      Condition.wait comp.c_done comp.c_lock
    done;
    Mutex.unlock comp.c_lock
  end;
  (match fl0 with
  | None -> ()
  | Some r ->
      F.record r ev_await (F.now () - a0) (if blocked then 1 else 0) 0);
  let verdicts = tk.t_verdicts and actions = tk.t_actions in
  (* Reset the scratch before parking the ticket: a parked ticket
     must pin no packets, results, or retired world. *)
  tk.t_verdicts <- [||];
  tk.t_actions <- [||];
  let cur = Atomic.get t.current in
  Array.iter
    (fun j ->
      if j.j_count > 0 then Array.fill j.j_items 0 j.j_count nil_item;
      j.j_count <- 0;
      j.j_verdicts <- [||];
      j.j_actions <- [||];
      j.j_pub <- cur)
    tk.jobs;
  t.free_tickets <- tk :: t.free_tickets;
  (verdicts, actions)

let dispatch t ~want_actions items =
  await t (dispatch_async t ~want_actions items)

let process_batch t items = fst (dispatch t ~want_actions:false items)
let handle_batch t items = snd (dispatch t ~want_actions:true items)

let counters t =
  let pub = Atomic.get t.current in
  let acc = Counters.create () in
  List.iter
    (fun (k, v) -> Counters.incr ~by:v acc k)
    (Counters.to_list t.acc_counters);
  Array.iter
    (fun env ->
      List.iter
        (fun (k, v) -> Counters.incr ~by:v acc k)
        (Counters.to_list env.Env.counters))
    pub.envs;
  acc

let metrics t =
  if not t.with_metrics then None
  else begin
    let pub = Atomic.get t.current in
    let acc = Metrics.create () in
    (match t.acc_metrics with
    | None -> ()
    | Some m -> Metrics.absorb acc (Metrics.snapshot m));
    Array.iter
      (function
        | None -> () | Some m -> Metrics.absorb acc (Metrics.snapshot m))
      pub.metricses;
    Some acc
  end

let flight_rings t =
  Array.to_list t.fl_rings |> List.filter_map (fun r -> r)

(* --- pipeline attribution from the flight rings -------------------- *)

type lane_stat = { count : int; mean_ns : float; p99_ns : int; max_ns : int }

type lane = { worker : int; queue_wait : lane_stat; execute : lane_stat }

type summary = {
  dispatch : lane_stat;
  await : lane_stat;
  await_blocked : int;
  lanes : lane list;
}

let nil_stat = { count = 0; mean_ns = 0.0; p99_ns = 0; max_ns = 0 }

let stat_of = function
  | [] -> nil_stat
  | l ->
      let a = Array.of_list l in
      Array.sort Stdlib.compare a;
      let n = Array.length a in
      let sum = Array.fold_left ( + ) 0 a in
      let rank = Stdlib.max 1 (int_of_float (Float.ceil (0.99 *. float_of_int n))) in
      {
        count = n;
        mean_ns = float_of_int sum /. float_of_int n;
        p99_ns = a.(rank - 1);
        max_ns = a.(n - 1);
      }

let timeline_summary t =
  match t.fl_rings.(0) with
  | None -> None
  | Some r0 ->
      let durs evs id =
        List.filter_map
          (fun e -> if e.F.ev_id = id then Some e.F.ev_a0 else None)
          evs
      in
      let evs0 = F.events r0 in
      let lanes =
        List.init t.ndomains (fun w ->
            let evs =
              match t.fl_rings.(w + 1) with
              | None -> []
              | Some r -> F.events r
            in
            {
              worker = w;
              queue_wait = stat_of (durs evs ev_queue_wait);
              execute = stat_of (durs evs ev_execute);
            })
      in
      Some
        {
          dispatch = stat_of (durs evs0 ev_dispatch);
          await = stat_of (durs evs0 ev_await);
          await_blocked =
            List.length
              (List.filter
                 (fun e -> e.F.ev_id = ev_await && e.F.ev_a1 = 1)
                 evs0);
          lanes;
        }

let shutdown t =
  if not (Atomic.get t.stop) then begin
    Atomic.set t.stop true;
    Array.iter Spsc.wake t.rings;
    Array.iter Domain.join t.doms;
    t.doms <- [||]
  end
