module Bitbuf = Dip_bitbuf.Bitbuf
module Engine = Dip_core.Engine
module Env = Dip_core.Env
module Obs = Dip_core.Obs
module Metrics = Dip_obs.Metrics
module Counters = Dip_netsim.Stats.Counters

type item = { now : float; ingress : Env.port; pkt : Bitbuf.t }

(* One unit of work handed to a worker: its shard of a caller batch.
   [idxs.(k)] is where [items.(k)]'s result goes in the caller's
   arrays, so workers write results directly into caller-order slots
   and the dispatcher never reshuffles. *)
type job = {
  j_items : item array;
  j_idxs : int array;
  j_verdicts : (Engine.verdict * Engine.info) array; (* caller-indexed *)
  j_actions : Dip_netsim.Sim.action list array; (* caller-indexed; [||] if unwanted *)
  j_want_actions : bool;
  j_done : bool Atomic.t;
}

(* Everything a worker reads per batch, swapped as one pointer
   (RCU-style): treat all of it as immutable once published. *)
type published = {
  snap : Snapshot.t;
  envs : Env.t array;
  obses : Obs.t option array;
  metricses : Metrics.t option array;
}

type t = {
  ndomains : int;
  current : published Atomic.t;
  rings : job Spsc.t array;
  stop : bool Atomic.t;
  mutable doms : unit Domain.t array;
  lock : Mutex.t; (* guards completion signalling only *)
  job_done : Condition.t;
  with_metrics : bool;
  obs_sample_every : int option;
}

let build_published ?sample_every ~metrics snap ndomains =
  let metricses =
    Array.init ndomains (fun _ -> if metrics then Some (Metrics.create ()) else None)
  in
  let obses = Array.map (Option.map (fun m -> Obs.create ?sample_every m)) metricses in
  let envs = Array.init ndomains snap.Snapshot.mk_env in
  { snap; envs; obses; metricses }

let worker t w =
  let stop () = Atomic.get t.stop in
  let rec loop () =
    match Spsc.pop_wait t.rings.(w) ~stop with
    | None -> ()
    | Some job ->
        let pub = Atomic.get t.current in
        let env = pub.envs.(w) in
        let b =
          Engine.batch_start ?obs:pub.obses.(w)
            ?verify:pub.snap.Snapshot.verify ~registry:pub.snap.Snapshot.registry
            env
        in
        Array.iteri
          (fun k it ->
            let ((verdict, _) as r) =
              Engine.batch_step b ~now:it.now ~ingress:it.ingress it.pkt
            in
            job.j_verdicts.(job.j_idxs.(k)) <- r;
            if job.j_want_actions then
              job.j_actions.(job.j_idxs.(k)) <-
                Engine.actions_of_verdict env ~ingress:it.ingress it.pkt verdict)
          job.j_items;
        Engine.batch_finish b;
        Atomic.set job.j_done true;
        Mutex.lock t.lock;
        Condition.broadcast t.job_done;
        Mutex.unlock t.lock;
        loop ()
  in
  loop ()

let create ?(queue_capacity = 64) ?(metrics = false) ?obs_sample_every ~domains
    snap =
  if domains < 1 then invalid_arg "Pool.create: domains must be >= 1";
  (match Snapshot.validate snap with
  | Ok () -> ()
  | Error e -> invalid_arg ("Pool.create: " ^ e));
  let t =
    {
      ndomains = domains;
      current =
        Atomic.make
          (build_published ?sample_every:obs_sample_every ~metrics snap domains);
      rings = Array.init domains (fun _ -> Spsc.create ~capacity:queue_capacity);
      stop = Atomic.make false;
      doms = [||];
      lock = Mutex.create ();
      job_done = Condition.create ();
      with_metrics = metrics;
      obs_sample_every;
    }
  in
  t.doms <- Array.init domains (fun w -> Domain.spawn (fun () -> worker t w));
  t

let domains t = t.ndomains
let epoch t = (Atomic.get t.current).snap.Snapshot.epoch

(* The snapshot's own gate runs first: an unsound registry never
   reaches the epoch swap, and the previous snapshot keeps serving. *)
let publish t snap =
  Snapshot.publish snap ~via:(fun snap ->
      Atomic.set t.current
        (build_published ?sample_every:t.obs_sample_every
           ~metrics:t.with_metrics snap t.ndomains))

let nil_info =
  { Engine.ops_run = 0; ops_skipped = 0; state_bytes = 0; parallel_depth = 0 }

let dispatch t ~want_actions items =
  let n = Array.length items in
  let verdicts = Array.make n (Engine.Quiet, nil_info) in
  let actions = if want_actions then Array.make n [] else [||] in
  if n > 0 then begin
    (* Shard by flow hash; stable within a worker, so per-flow
       arrival order is preserved. *)
    let shard_of = Array.make n 0 in
    let counts = Array.make t.ndomains 0 in
    for i = 0 to n - 1 do
      let w = Flow.shard items.(i).pkt ~workers:t.ndomains in
      shard_of.(i) <- w;
      counts.(w) <- counts.(w) + 1
    done;
    let jobs =
      Array.init t.ndomains (fun w ->
          if counts.(w) = 0 then None
          else
            Some
              {
                j_items = Array.make counts.(w) items.(0);
                j_idxs = Array.make counts.(w) 0;
                j_verdicts = verdicts;
                j_actions = actions;
                j_want_actions = want_actions;
                j_done = Atomic.make false;
              })
    in
    let fill = Array.make t.ndomains 0 in
    for i = 0 to n - 1 do
      let w = shard_of.(i) in
      match jobs.(w) with
      | None -> ()
      | Some j ->
          j.j_items.(fill.(w)) <- items.(i);
          j.j_idxs.(fill.(w)) <- i;
          fill.(w) <- fill.(w) + 1
    done;
    Array.iteri
      (fun w jo ->
        match jo with
        | None -> ()
        | Some j ->
            (* The ring holds batches, not packets; it only fills if
               the caller outruns the worker by [queue_capacity]
               whole batches, so backing off is fine. *)
            while not (Spsc.push t.rings.(w) j) do
              Domain.cpu_relax ()
            done)
      jobs;
    let all_done () =
      Array.for_all
        (function None -> true | Some j -> Atomic.get j.j_done)
        jobs
    in
    Mutex.lock t.lock;
    while not (all_done ()) do
      Condition.wait t.job_done t.lock
    done;
    Mutex.unlock t.lock
  end;
  (verdicts, actions)

let process_batch t items = fst (dispatch t ~want_actions:false items)
let handle_batch t items = snd (dispatch t ~want_actions:true items)

let counters t =
  let pub = Atomic.get t.current in
  let acc = Counters.create () in
  Array.iter
    (fun env ->
      List.iter
        (fun (k, v) -> Counters.incr ~by:v acc k)
        (Counters.to_list env.Env.counters))
    pub.envs;
  acc

let metrics t =
  if not t.with_metrics then None
  else begin
    let pub = Atomic.get t.current in
    let acc = Metrics.create () in
    Array.iter
      (function
        | None -> () | Some m -> Metrics.absorb acc (Metrics.snapshot m))
      pub.metricses;
    Some acc
  end

let shutdown t =
  if not (Atomic.get t.stop) then begin
    Atomic.set t.stop true;
    Array.iter Spsc.wake t.rings;
    Array.iter Domain.join t.doms;
    t.doms <- [||]
  end
