type t = {
  epoch : int;
  registry : Dip_core.Registry.t;
  mk_env : int -> Dip_core.Env.t;
  verify : (Dip_core.Packet.view -> (unit, string) result) option;
  check : (Dip_core.Registry.t -> (unit, string) result) option;
}

let v ?verify ?check ~registry ~mk_env () =
  { epoch = 0; registry; mk_env; verify; check }

let next ?verify ?check ?registry ?mk_env t =
  {
    epoch = t.epoch + 1;
    registry = Option.value registry ~default:t.registry;
    mk_env = Option.value mk_env ~default:t.mk_env;
    verify;
    check = (match check with Some _ -> check | None -> t.check);
  }

let validate t =
  match t.check with
  | None -> Ok ()
  | Some check -> (
      match check t.registry with
      | Ok () -> Ok ()
      | Error e ->
          Error (Printf.sprintf "snapshot epoch %d rejected: %s" t.epoch e))

let publish t ~via =
  match validate t with
  | Ok () ->
      via t;
      Ok ()
  | Error _ as err -> err
