type t = {
  epoch : int;
  registry : Dip_core.Registry.t;
  mk_env : int -> Dip_core.Env.t;
  verify : (Dip_core.Packet.view -> (unit, string) result) option;
}

let v ?verify ~registry ~mk_env () = { epoch = 0; registry; mk_env; verify }

let next ?verify ?registry ?mk_env t =
  {
    epoch = t.epoch + 1;
    registry = Option.value registry ~default:t.registry;
    mk_env = Option.value mk_env ~default:t.mk_env;
    verify;
  }
