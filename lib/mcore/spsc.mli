(** Bounded single-producer/single-consumer ring queue.

    The feed path between the dispatcher and one worker domain
    ({!Pool}). The fast path is lock-free and, in the steady state,
    touches no foreign cache line at all: the head and tail cursors
    live in cache-line-padded blocks ({!Pad}), and each side keeps a
    private snapshot of the {e opposing} cursor, refreshed only when
    the ring looks full (producer) or empty (consumer) against the
    snapshot. A push or pop is then one plain load of the own cursor,
    one slot store, and one release store — the opposing cursor is
    loaded once per {e drain}, not once per operation. This is sound
    {e only} under the SPSC contract: exactly one domain pushes and
    exactly one domain pops.

    Both cursors are monotone — stored only by their owner, only
    incremented — which is what makes the snapshots safe to act on:
    a stale head can only make the producer conservatively see a
    fuller ring, a stale tail an emptier one; neither can cause an
    overwrite or a double-pop.

    The mutex/condition pair exists solely so the consumer can
    {e block} when the ring runs dry instead of spinning. On a
    machine with fewer cores than domains a spinning worker would
    steal the dispatcher's CPU and deadlock progress; blocking makes
    the pool correct (if slow) even on one core. The producer only
    takes the lock when the consumer has announced it is parked
    (a padded atomic flag), so while items flow the lock is never
    touched by either side. *)

type 'a t

val create : capacity:int -> 'a t
(** [create ~capacity] holds at least [capacity] items (rounded up to
    a power of two). Raises [Invalid_argument] if [capacity < 1]. *)

val capacity : 'a t -> int

val size : 'a t -> int
(** Number of occupied slots, always within [[0, capacity]]. The two
    cursor loads are not one atomic read, so under concurrent
    push/pop this is a {e linearizable-ish} estimate, not a snapshot:
    head is loaded first (monotonicity makes the difference
    non-negative) and the result is clamped to the ring bound (the
    producer may advance tail between the loads). *)

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> bool
(** Producer side. [false] when the ring is full (the producer should
    back off and retry). *)

val pop : 'a t -> 'a option
(** Consumer side, non-blocking. *)

val pop_wait : ?spin:int -> 'a t -> stop:(unit -> bool) -> 'a option
(** Consumer side, blocking. Waits until an item is available or
    [stop ()] becomes true; returns [None] only when the ring is
    empty {e and} stopped, so queued work always drains before
    shutdown. [spin] (default 0) bounds a busy-poll before parking on
    the condition variable — size it to the machine, and keep it 0
    when worker domains may outnumber cores. The producer must call
    {!wake} after flipping the stop flag. *)

val wake : 'a t -> unit
(** Wake a consumer blocked in {!pop_wait} (e.g. after setting the
    stop flag). *)
