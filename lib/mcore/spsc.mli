(** Bounded single-producer/single-consumer ring queue.

    The feed path between the dispatcher and one worker domain
    ({!Pool}). The fast path is lock-free — one [Atomic] load and one
    [Atomic] store per operation, the slot array itself accessed
    plainly (the release store of the cursor publishes the slot
    write) — which is sound {e only} under the SPSC contract: exactly
    one domain pushes and exactly one domain pops.

    The mutex/condition pair exists solely so the consumer can
    {e block} when the ring runs dry instead of spinning. On a
    machine with fewer cores than domains a spinning worker would
    steal the dispatcher's CPU and deadlock progress; blocking makes
    the pool correct (if slow) even on one core. It costs the
    producer an uncontended lock/signal per push and the consumer
    nothing while items flow. *)

type 'a t

val create : capacity:int -> 'a t
(** [create ~capacity] holds at least [capacity] items (rounded up to
    a power of two). Raises [Invalid_argument] if [capacity < 1]. *)

val capacity : 'a t -> int
val size : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> 'a -> bool
(** Producer side. [false] when the ring is full (the producer should
    back off and retry). *)

val pop : 'a t -> 'a option
(** Consumer side, non-blocking. *)

val pop_wait : 'a t -> stop:(unit -> bool) -> 'a option
(** Consumer side, blocking. Waits until an item is available or
    [stop ()] becomes true; returns [None] only when the ring is
    empty {e and} stopped, so queued work always drains before
    shutdown. The producer must call {!wake} after flipping the stop
    flag. *)

val wake : 'a t -> unit
(** Wake a consumer blocked in {!pop_wait} (e.g. after setting the
    stop flag). *)
