(** Cache-line padding for cross-domain hot words.

    An [int Atomic.t] is an ordinary two-word heap block; the
    allocator packs consecutive allocations, so two cursors created
    back to back usually share a 64-byte cache line. Under an SPSC
    ring that is textbook false sharing: every producer store to
    [tail] invalidates the consumer's cached line holding [head] and
    vice versa, turning two independent hot words into one ping-pong
    line. {!atomic_int} allocates the atomic inside a block big
    enough that no other object's fields can land on its line. *)

val atomic_int : int -> int Atomic.t
(** [atomic_int v] is [Atomic.make v] backed by a cache-line-sized
    block: the value word is followed by enough padding words that a
    subsequent allocation starts on a different 64-byte line. The
    padding is invisible to [Atomic.get]/[set]/[fetch_and_add], which
    only touch field 0. *)
