(** A pool of worker domains executing the DIP engine over sharded
    packet batches — one logical router as [N] parallel line cards.

    Architecture (DESIGN.md §12):

    - [N] worker domains, each fed by its own bounded {!Spsc} ring
      (cache-line-padded cursors, cached opposing-cursor reads) and
      owning a private {!Dip_core.Env.t} (built from the snapshot's
      [mk_env]) plus, optionally, a private
      {!Dip_obs.Metrics.t}/{!Dip_core.Obs.t} pair and a persistent
      parse hint. Workers share {e no} mutable state; the only
      cross-domain traffic is the rings, the published-snapshot
      pointer, and one completion countdown per dispatch.
    - Packets are sharded to workers by {!Flow.hash} over the match
      field, so all packets of a flow execute in arrival order on
      one worker (per-flow ordering, coherent per-flow state) while
      distinct flows run concurrently.
    - Configuration is read through an [Atomic] snapshot pointer
      ({!Snapshot}); {!publish} swaps it wholesale. The published
      world is pinned into each job {e at dispatch time}: in-flight
      batches always finish on the epoch they were dispatched under,
      however the swap interleaves with worker scheduling.
    - Dispatch state (per-worker job records, shard scratch) is
      persistent, recycled through tickets: the hot path allocates
      only the result arrays handed back to the caller. Completion
      is an atomic countdown with a spin-then-block wait — no
      per-job lock or broadcast.

    {!process_batch} and {!handle_batch} are synchronous; the
    asynchronous pair {!dispatch_async}/{!await} additionally lets a
    caller keep one window in flight while preparing the next
    ({!Runner}'s pipelined mode). Results are always returned in the
    caller's input order. All dispatching ({!process_batch},
    {!handle_batch}, {!dispatch_async}, {!await}) must come from one
    domain at a time — the pool is [N] workers behind {e one}
    dispatcher, not a thread-safe job queue. Between dispatches the
    pool is quiescent, which is when {!counters} / {!metrics}
    snapshots are exact. *)

type t

type item = {
  now : float;
  ingress : Dip_core.Env.port;
  pkt : Dip_bitbuf.Bitbuf.t;
}

val create :
  ?queue_capacity:int ->
  ?metrics:bool ->
  ?obs_sample_every:int ->
  ?flight:int ->
  ?flight_capacity:int ->
  domains:int ->
  Snapshot.t ->
  t
(** [create ~domains snap] spawns [domains] worker domains (≥ 1).
    [queue_capacity] (default 64) bounds each worker's ring —
    batches, not packets, occupy slots. [metrics] (default false)
    gives each worker a private metrics registry and engine observer
    (merged on {!metrics}); [obs_sample_every] tunes its span
    sampling. Call {!shutdown} when done — worker domains are not
    daemons.

    [flight] arms a {!Dip_obs.Flight} recorder with the given trace
    pid: the pool owns [domains + 1] rings ([flight_capacity] events
    each) — tid 0 is the dispatcher lane (["pool.dispatch"] /
    ["pool.await"] spans, ["pool.publish"] instants), tid [w + 1] is
    worker [w]'s lane (["pool.queue_wait"] / ["pool.execute"] spans,
    the engine's and program cache's events, and per-batch
    ["gc.minor_collections"] / ["gc.promoted_words"] counters).
    Arming the recorder gives every worker an observer even without
    [metrics]. Drain with {!flight_rings} / {!timeline_summary} when
    the pool is quiescent.

    A [domains:1] pool runs batches to completion on the dispatching
    domain itself (using worker 0's environment, hint and observer,
    so everything observable is identical to the ring path): with one
    worker there is no parallelism to buy with a domain crossing,
    only hand-off overhead — this is the configuration the overhead
    floor in BENCH_PR7 measures. *)

val domains : t -> int

val epoch : t -> int
(** Epoch of the currently published snapshot. *)

val publish : t -> Snapshot.t -> (unit, string) result
(** Atomically replace the configuration snapshot: fresh per-worker
    environments, registry and verifier. Lock-free for workers; a
    batch dispatched before the swap finishes on the old epoch (its
    world is pinned in the job), one dispatched after runs on the
    new.

    Counters and metrics accumulated under the retiring epoch are
    {e absorbed} into a pool-lifetime accumulator before the old
    world is dropped, so {!counters}/{!metrics} keep reporting
    totals across configuration changes. The absorption is exact
    when the pool is quiescent (no dispatch in flight) — increments
    a still-running pinned batch makes after the swap die with its
    epoch.

    The snapshot's publish-time gate ({!Snapshot.check}) runs first:
    on [Error] nothing is swapped, the previous epoch keeps serving,
    and the reason is returned. {!create} applies the same gate to
    the initial snapshot (raising [Invalid_argument], since there is
    no previous epoch to keep). *)

val process_batch : t -> item array -> (Dip_core.Engine.verdict * Dip_core.Engine.info) array
(** Execute the router-side engine over the batch, sharded across
    the workers; blocks until done. Result [i] corresponds to input
    [i]. Packets are mutated in place exactly as
    {!Dip_core.Engine.process} would. *)

val handle_batch : t -> item array -> Dip_netsim.Sim.action list array
(** Like {!process_batch} but additionally translates each verdict
    into simulator actions ({!Dip_core.Engine.actions_of_verdict})
    on the worker, returning the per-packet action lists — the shape
    {!Runner} feeds to {!Dip_netsim.Sim.run_pipelined}. *)

type ticket
(** A dispatch in flight: the handle {!await} turns into results.
    Tickets own recycled scratch — every [dispatch_async] must be
    paired with exactly one [await], and both must run on the
    dispatcher domain. *)

val dispatch_async : t -> want_actions:bool -> item array -> ticket
(** Shard the batch, pin the current epoch into its jobs, and
    enqueue them on the worker rings {e without waiting}: the
    workers execute while the caller prepares (or dispatches) the
    next window. With [want_actions] the per-packet action lists are
    produced worker-side as in {!handle_batch}. *)

val await :
  t ->
  ticket ->
  (Dip_core.Engine.verdict * Dip_core.Engine.info) array
  * Dip_netsim.Sim.action list array
(** Block until every job of the ticket's dispatch completed
    (spin-then-block on the countdown) and return the caller-ordered
    verdicts and, if requested, action lists ([[||]] otherwise). The
    ticket is recycled; using it twice is a bug. *)

val counters : t -> Dip_netsim.Stats.Counters.t
(** Sum of the per-worker environment counters (forwarded/dropped
    tallies, progcache hit/miss/evict, …) under the current
    snapshot {e plus} the absorbed totals of every retired epoch.
    Exact when the pool is quiescent. *)

val metrics : t -> Dip_obs.Metrics.t option
(** Per-worker metrics registries (current epoch plus retired-epoch
    accumulator) merged into a fresh registry
    ({!Dip_obs.Metrics.absorb}) — [None] unless [create
    ~metrics:true]. Exact when the pool is quiescent. *)

val flight_rings : t -> Dip_obs.Flight.ring list
(** The pool's flight-recorder rings — dispatcher lane first, then
    one per worker ([[]] unless [create ~flight]). Read them only
    when the pool is quiescent; merge with the caller's own rings via
    {!Dip_obs.Flight.merge} for a cross-layer timeline. *)

type lane_stat = {
  count : int;  (** samples recorded (0 → other fields are zero) *)
  mean_ns : float;
  p99_ns : int;
  max_ns : int;
}

type lane = {
  worker : int;
  queue_wait : lane_stat;  (** enqueue → pop, per batch *)
  execute : lane_stat;  (** pop → batch finished, per batch *)
}

type summary = {
  dispatch : lane_stat;  (** shard + enqueue span on the dispatcher *)
  await : lane_stat;  (** await-to-completion span on the dispatcher *)
  await_blocked : int;  (** awaits that parked on the condvar *)
  lanes : lane list;
}

val timeline_summary : t -> summary option
(** Digest the flight rings into per-worker queue-wait / execute and
    dispatcher dispatch / await latency stats — [None] unless the
    recorder is armed. Statistics cover only the events still in the
    rings (overwrite-oldest), so on long runs they describe the
    recent past. Quiescent-pool only, like {!flight_rings}. *)

val shutdown : t -> unit
(** Drain the rings, stop and join the worker domains. The pool must
    not be used afterwards. Idempotent. *)
