(** A pool of worker domains executing the DIP engine over sharded
    packet batches — one logical router as [N] parallel line cards.

    Architecture (DESIGN.md §12):

    - [N] worker domains, each fed by its own bounded {!Spsc} ring
      and owning a private {!Dip_core.Env.t} (built from the
      snapshot's [mk_env]) plus, optionally, a private
      {!Dip_obs.Metrics.t}/{!Dip_core.Obs.t} pair. Workers share
      {e no} mutable state; the only cross-domain traffic is the
      rings, the published-snapshot pointer, and job-completion
      flags.
    - Packets are sharded to workers by {!Flow.hash} over the match
      field, so all packets of a flow execute in arrival order on
      one worker (per-flow ordering, coherent per-flow state) while
      distinct flows run concurrently.
    - Configuration is read through an [Atomic] snapshot pointer
      ({!Snapshot}); {!publish} swaps it wholesale. Workers pick up
      the new epoch at their next batch; in-flight batches finish on
      the old one.

    {!process_batch} and {!handle_batch} are synchronous: the
    calling domain blocks until every worker finished its share, and
    results are returned in the caller's input order. Between calls
    the pool is quiescent, which is when {!counters} / {!metrics}
    snapshots are exact. *)

type t

type item = {
  now : float;
  ingress : Dip_core.Env.port;
  pkt : Dip_bitbuf.Bitbuf.t;
}

val create :
  ?queue_capacity:int ->
  ?metrics:bool ->
  ?obs_sample_every:int ->
  domains:int ->
  Snapshot.t ->
  t
(** [create ~domains snap] spawns [domains] worker domains (≥ 1).
    [queue_capacity] (default 64) bounds each worker's ring —
    batches, not packets, occupy slots. [metrics] (default false)
    gives each worker a private metrics registry and engine observer
    (merged on {!metrics}); [obs_sample_every] tunes its span
    sampling. Call {!shutdown} when done — worker domains are not
    daemons. *)

val domains : t -> int
val epoch : t -> int
(** Epoch of the currently published snapshot. *)

val publish : t -> Snapshot.t -> (unit, string) result
(** Atomically replace the configuration snapshot: fresh per-worker
    environments, registry and verifier. Lock-free for workers;
    takes effect at each worker's next batch. Counters and metrics
    accumulated under the old snapshot are discarded with it — read
    them first if they matter.

    The snapshot's publish-time gate ({!Snapshot.check}) runs first:
    on [Error] nothing is swapped, the previous epoch keeps serving,
    and the reason is returned. {!create} applies the same gate to
    the initial snapshot (raising [Invalid_argument], since there is
    no previous epoch to keep). *)

val process_batch : t -> item array -> (Dip_core.Engine.verdict * Dip_core.Engine.info) array
(** Execute the router-side engine over the batch, sharded across
    the workers; blocks until done. Result [i] corresponds to input
    [i]. Packets are mutated in place exactly as
    {!Dip_core.Engine.process} would. *)

val handle_batch : t -> item array -> Dip_netsim.Sim.action list array
(** Like {!process_batch} but additionally translates each verdict
    into simulator actions ({!Dip_core.Engine.actions_of_verdict})
    on the worker, returning the per-packet action lists — the shape
    {!Runner} feeds to {!Dip_netsim.Sim.run_batched}. *)

val counters : t -> Dip_netsim.Stats.Counters.t
(** Sum of the per-worker environment counters (forwarded/dropped
    tallies, progcache hit/miss/evict, …) under the current
    snapshot. Exact when the pool is quiescent. *)

val metrics : t -> Dip_obs.Metrics.t option
(** Per-worker metrics registries merged into a fresh registry
    ({!Dip_obs.Metrics.absorb}) — [None] unless [create ~metrics:true].
    Exact when the pool is quiescent. *)

val shutdown : t -> unit
(** Drain the rings, stop and join the worker domains. The pool must
    not be used afterwards. Idempotent. *)
