(** Immutable configuration snapshots for the parallel data plane.

    Worker domains never take a lock to read configuration: a
    {!Pool} holds one [Atomic.t] pointer to the {e current} snapshot,
    workers dereference it at batch start, and the control plane
    replaces the whole pointer ({!Pool.publish}) instead of mutating
    anything in place. A snapshot must therefore be treated as
    immutable once published — build a new one ({!next}) for every
    configuration change, RCU-style.

    Because {!Dip_core.Env.t} is deeply mutable (PIT, routes, OPT
    secrets), a snapshot does not carry environments; it carries a
    {e factory} [mk_env] from which the pool builds one private
    environment per worker. Flow-hash sharding ({!Flow}) guarantees
    each flow only ever sees one worker's environment, so per-flow
    state stays coherent without sharing. *)

type t = {
  epoch : int;  (** Monotone publication counter. *)
  registry : Dip_core.Registry.t;
      (** Installed operation modules. Treat as frozen: enabling or
          disabling an op means publishing a new snapshot. *)
  mk_env : int -> Dip_core.Env.t;
      (** [mk_env w] builds worker [w]'s private environment —
          identical configuration, disjoint mutable state. *)
  verify : (Dip_core.Packet.view -> (unit, string) result) option;
      (** Static program verifier, e.g. [Dip_analysis.verifier]. *)
  check : (Dip_core.Registry.t -> (unit, string) result) option;
      (** Publish-time configuration gate, e.g.
          [Dip_analysis.registry_gate ~programs]: run against
          {!registry} before the epoch swap, so an unsound
          configuration (one whose programs would break flow-hash
          sharding, race, or dead-end) is rejected before any worker
          can observe it. *)
}

val v :
  ?verify:(Dip_core.Packet.view -> (unit, string) result) ->
  ?check:(Dip_core.Registry.t -> (unit, string) result) ->
  registry:Dip_core.Registry.t ->
  mk_env:(int -> Dip_core.Env.t) ->
  unit ->
  t
(** A fresh epoch-0 snapshot. *)

val next :
  ?verify:(Dip_core.Packet.view -> (unit, string) result) ->
  ?check:(Dip_core.Registry.t -> (unit, string) result) ->
  ?registry:Dip_core.Registry.t ->
  ?mk_env:(int -> Dip_core.Env.t) ->
  t ->
  t
(** [next t] is [t] with the given fields replaced and the epoch
    bumped — the value to hand to {!Pool.publish}. An omitted
    [verify] clears it (pass it explicitly to keep verification); an
    omitted [check] is inherited — a publish-time gate stays mandatory
    across epochs unless explicitly replaced. *)

val validate : t -> (unit, string) result
(** Run the snapshot's {!check} (if any) against its registry. *)

val publish : t -> via:(t -> unit) -> (unit, string) result
(** [publish t ~via] validates and only then hands [t] to [via] (the
    actual pointer swap, e.g. {!Pool.publish}'s internals). The gate
    is not advisory: a failing {!check} means [via] is never called
    and the configuration never reaches an epoch swap. *)
