(** Plugging worker pools into the discrete-event simulator.

    {!run_parallel} drives {!Dip_netsim.Sim.run_batched} with an
    [exec] that fans each batch out to the routers' {!Pool}s: batch
    items are grouped per node, each node's share is executed on its
    pool's worker domains ({!Pool.handle_batch}), and the resulting
    action lists are returned in batch order for the simulator to
    apply on the calling domain. Delivery counts and counters are
    therefore identical whatever [domains] each pool was created
    with — the determinism property the test suite checks. *)

val run_parallel :
  ?until:float ->
  ?window:float ->
  Dip_netsim.Sim.t ->
  pools:(Dip_netsim.Sim.node_id * Pool.t) list ->
  unit
(** [run_parallel sim ~pools] runs [sim] to completion, executing
    arrivals at each listed node through its pool; all other nodes
    (and timers) run their normal handlers. [window] (default 0:
    same-instant arrivals only) widens batches to arrivals within
    that many seconds of the first — bigger batches, more
    parallelism, at the cost of acting on slightly stale arrival
    interleavings (see {!Dip_netsim.Sim.run_batched}). The caller
    keeps ownership of the pools and must {!Pool.shutdown} them. *)
