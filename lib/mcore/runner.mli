(** Plugging worker pools into the discrete-event simulator.

    {!run_parallel} drives {!Dip_netsim.Sim.run_pipelined} with a
    [submit] that fans each window out to the routers' {!Pool}s:
    batch items are grouped per node, each node's share is dispatched
    asynchronously to its pool ({!Pool.dispatch_async}) so all pools
    work the window concurrently, and the join thunk
    ({!Pool.await}s) reassembles the action lists in batch order for
    the simulator to apply on the calling domain. The simulator keeps
    one window in flight, so the workers execute window [k] while the
    event loop collects and shards window [k+1] — no full barrier per
    window. Delivery counts and counters are identical whatever
    [domains] each pool was created with — the determinism property
    the test suite checks. *)

val run_parallel :
  ?until:float ->
  ?window:float ->
  Dip_netsim.Sim.t ->
  pools:(Dip_netsim.Sim.node_id * Pool.t) list ->
  unit
(** [run_parallel sim ~pools] runs [sim] to completion, executing
    arrivals at each listed node through its pool; all other nodes
    (and timers) run their normal handlers and drain the pipeline
    first. [window] (default 0: same-instant arrivals only) widens
    batches to arrivals within that many seconds of the first —
    bigger batches, more parallelism, at the cost of acting on
    slightly stale arrival interleavings (one extra window of
    staleness versus {!Dip_netsim.Sim.run_batched}; see
    {!Dip_netsim.Sim.run_pipelined}). The caller keeps ownership of
    the pools and must {!Pool.shutdown} them. *)
