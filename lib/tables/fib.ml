(* Million-route FIB engines. See fib.mli for the design overview.

   Both engines intern next-hop values: a FIB has millions of routes
   but few distinct next hops, so the flat structures store small
   integer ids and the values live once in a growable pool. *)

module Pool = struct
  type 'a t = {
    mutable vals : 'a option array;
    mutable n : int;
    ids : ('a, int) Hashtbl.t;
  }

  let create () = { vals = Array.make 8 None; n = 0; ids = Hashtbl.create 16 }

  let intern p ~limit v =
    match Hashtbl.find_opt p.ids v with
    | Some id -> id
    | None ->
        let id = p.n in
        if id > limit then
          failwith "Fib: too many distinct next-hop values";
        if id = Array.length p.vals then begin
          let bigger = Array.make (2 * id) None in
          Array.blit p.vals 0 bigger 0 id;
          p.vals <- bigger
        end;
        p.vals.(id) <- Some v;
        Hashtbl.replace p.ids v id;
        p.n <- id + 1;
        id

  let get p id =
    if id < 0 || id >= p.n then invalid_arg "Fib.value: unknown id";
    match p.vals.(id) with Some v -> v | None -> assert false
end

module V4 = struct
  (* DIR-24-8: slot i of the /24 table holds a 16-bit entry for the
     256 addresses [i*256, (i+1)*256):
       0x0000            no route
       0x0001..0x7FFF    next-hop id + 1
       0x8000 lor b      resolved at /32 precision in spill block [b]
     A spill block is 256 entries (same encoding, minus the spill
     flag — blocks never nest). Shadow per-slot/per-entry "owner
     length" bytes (255 = empty) drive the classic incremental
     update: an insert of /L only overwrites slots whose current
     owner is shorter, a withdrawal re-covers exactly the slots the
     dead route owned from the per-length side store.

     The 16.7M-slot table is split into 1024 chunks of 16384 slots,
     materialized on first write; unmaterialized chunks share a zero
     sentinel plus a packed whole-chunk cover word (for /0../10
     routes, which cover whole chunks), so an empty table costs KBs,
     not 48 MB, and a default route costs 1024 words, not 16M slot
     writes. *)

  let chunk_bits = 14
  let chunk_slots = 1 lsl chunk_bits
  let chunk_mask = chunk_slots - 1
  let n_chunks = 1 lsl (24 - chunk_bits)

  type 'a t = {
    ent24 : Bytes.t array;  (* per chunk: 16-bit LE entries *)
    len24 : Bytes.t array;  (* per chunk: owner length bytes *)
    zero_ent : Bytes.t;  (* sentinel for unmaterialized chunks *)
    empty_len : Bytes.t;
    cover_chunk : int array;
        (* per *sentinel* chunk: (owner_len lsl 16) lor entry, 0 = none *)
    mutable spill_ent : Bytes.t;
    mutable spill_len : Bytes.t;
    mutable spill_deep : int array;  (* per block: entries owned by /25+ *)
    mutable blocks : int;
    mutable free : int list;
    pool : 'a Pool.t;
    by_len : (int32, int) Hashtbl.t array;  (* 33: masked addr -> id *)
    mutable count : int;
  }

  let get16 b i = Bytes.get_uint16_le b (i lsl 1)
  let set16 b i v = Bytes.set_uint16_le b (i lsl 1) v
  let u32 a = Int32.to_int a land 0xFFFFFFFF

  let mask len a =
    if len = 0 then 0l else Int32.logand a (Int32.shift_left (-1l) (32 - len))

  let create () =
    let zero_ent = Bytes.make (chunk_slots * 2) '\000' in
    let empty_len = Bytes.make chunk_slots '\xff' in
    {
      ent24 = Array.make n_chunks zero_ent;
      len24 = Array.make n_chunks empty_len;
      zero_ent;
      empty_len;
      cover_chunk = Array.make n_chunks 0;
      spill_ent = Bytes.create 0;
      spill_len = Bytes.create 0;
      spill_deep = [||];
      blocks = 0;
      free = [];
      pool = Pool.create ();
      by_len = Array.init 33 (fun _ -> Hashtbl.create 16);
      count = 0;
    }

  let size t = t.count
  let value t id = Pool.get t.pool id

  let materialize t c =
    let ent = t.ent24.(c) in
    if ent != t.zero_ent then ent
    else begin
      let ent = Bytes.make (chunk_slots * 2) '\000' in
      let len = Bytes.make chunk_slots '\xff' in
      let cc = t.cover_chunk.(c) in
      if cc <> 0 then begin
        let ce = cc land 0xFFFF and cl = cc lsr 16 in
        for off = 0 to chunk_slots - 1 do
          set16 ent off ce
        done;
        Bytes.fill len 0 chunk_slots (Char.chr cl);
        t.cover_chunk.(c) <- 0
      end;
      t.ent24.(c) <- ent;
      t.len24.(c) <- len;
      ent
    end

  let alloc_block t =
    match t.free with
    | b :: rest ->
        t.free <- rest;
        b
    | [] ->
        let b = t.blocks in
        if b > 0x7FFF then
          failwith "Fib.V4: spill blocks exhausted (max 32768)";
        let need = (b + 1) * 512 in
        if Bytes.length t.spill_ent < need then begin
          let cap = max need (max 8192 (2 * Bytes.length t.spill_ent)) in
          let ne = Bytes.make cap '\000' in
          let nl = Bytes.make (cap / 2) '\xff' in
          Bytes.blit t.spill_ent 0 ne 0 (Bytes.length t.spill_ent);
          Bytes.blit t.spill_len 0 nl 0 (Bytes.length t.spill_len);
          t.spill_ent <- ne;
          t.spill_len <- nl;
          let nd = Array.make (cap / 512) 0 in
          Array.blit t.spill_deep 0 nd 0 (Array.length t.spill_deep);
          t.spill_deep <- nd
        end;
        t.blocks <- b + 1;
        b

  (* Turn slot [i] into a spill block seeded with its current cover. *)
  let spill_of_slot t i =
    let c = i lsr chunk_bits and off = i land chunk_mask in
    let ent = materialize t c in
    let cur = get16 ent off in
    if cur land 0x8000 <> 0 then cur land 0x7FFF
    else begin
      let b = alloc_block t in
      let cl = if cur = 0 then 0xFF else Bytes.get_uint8 t.len24.(c) off in
      for j = 0 to 255 do
        let k = (b lsl 8) lor j in
        set16 t.spill_ent k cur;
        Bytes.set_uint8 t.spill_len k cl
      done;
      t.spill_deep.(b) <- 0;
      set16 ent off (0x8000 lor b);
      Bytes.set_uint8 t.len24.(c) off 0xFF;
      b
    end

  (* Best remaining route shorter than [below] covering [a], as
     (entry, owner-length byte): (0, 0xFF) when none. *)
  let cover t a ~below =
    let rec go l =
      if l < 0 then (0, 0xFF)
      else
        match Hashtbl.find_opt t.by_len.(l) (mask l a) with
        | Some id -> (id + 1, l)
        | None -> go (l - 1)
    in
    go (below - 1)

  (* Slot [i]'s chunk must be materialized. *)
  let set_slot_covered t i e len =
    let c = i lsr chunk_bits and off = i land chunk_mask in
    let ent = t.ent24.(c) in
    let cur = get16 ent off in
    if cur land 0x8000 <> 0 then begin
      let b = cur land 0x7FFF in
      for j = 0 to 255 do
        let k = (b lsl 8) lor j in
        let ol = Bytes.get_uint8 t.spill_len k in
        let ol = if ol = 0xFF then -1 else ol in
        if ol <= len then begin
          set16 t.spill_ent k e;
          Bytes.set_uint8 t.spill_len k len
        end
      done
    end
    else
      let ol = if cur = 0 then -1 else Bytes.get_uint8 t.len24.(c) off in
      if ol <= len then begin
        set16 ent off e;
        Bytes.set_uint8 t.len24.(c) off len
      end

  let unset_slot t i len =
    let c = i lsr chunk_bits and off = i land chunk_mask in
    let ent = t.ent24.(c) in
    let cur = get16 ent off in
    if cur land 0x8000 <> 0 then begin
      let b = cur land 0x7FFF in
      for j = 0 to 255 do
        let k = (b lsl 8) lor j in
        if Bytes.get_uint8 t.spill_len k = len then begin
          let e', l' = cover t (Int32.of_int ((i lsl 8) lor j)) ~below:len in
          set16 t.spill_ent k e';
          Bytes.set_uint8 t.spill_len k l'
        end
      done
    end
    else if cur <> 0 && Bytes.get_uint8 t.len24.(c) off = len then begin
      let e', l' = cover t (Int32.of_int (i lsl 8)) ~below:len in
      set16 ent off e';
      Bytes.set_uint8 t.len24.(c) off l'
    end

  let insert t a ~len v =
    if len < 0 || len > 32 then invalid_arg "Fib.V4.insert: len in [0,32]";
    let a = mask len a in
    let id = Pool.intern t.pool ~limit:0x7FFE v in
    if not (Hashtbl.mem t.by_len.(len) a) then t.count <- t.count + 1;
    Hashtbl.replace t.by_len.(len) a id;
    let e = id + 1 in
    if len <= 24 - chunk_bits then begin
      (* covers whole chunks *)
      let c0 = u32 a lsr (8 + chunk_bits) in
      let nc = 1 lsl (24 - chunk_bits - len) in
      for c = c0 to c0 + nc - 1 do
        if t.ent24.(c) == t.zero_ent then begin
          let cc = t.cover_chunk.(c) in
          let ccl = if cc = 0 then -1 else cc lsr 16 in
          if ccl <= len then t.cover_chunk.(c) <- (len lsl 16) lor e
        end
        else
          for off = 0 to chunk_slots - 1 do
            set_slot_covered t ((c lsl chunk_bits) lor off) e len
          done
      done
    end
    else if len <= 24 then begin
      let base = u32 a lsr 8 in
      let n = 1 lsl (24 - len) in
      ignore (materialize t (base lsr chunk_bits));
      for i = base to base + n - 1 do
        set_slot_covered t i e len
      done
    end
    else begin
      let slot = u32 a lsr 8 in
      let b = spill_of_slot t slot in
      let base = u32 a land 0xFF in
      let w = 1 lsl (32 - len) in
      for j = base to base + w - 1 do
        let k = (b lsl 8) lor j in
        let ol = Bytes.get_uint8 t.spill_len k in
        let ol = if ol = 0xFF then -1 else ol in
        if ol <= len then begin
          if ol < 25 then t.spill_deep.(b) <- t.spill_deep.(b) + 1;
          set16 t.spill_ent k e;
          Bytes.set_uint8 t.spill_len k len
        end
      done
    end

  let remove t a ~len =
    if len < 0 || len > 32 then invalid_arg "Fib.V4.remove: len in [0,32]";
    let a = mask len a in
    if not (Hashtbl.mem t.by_len.(len) a) then false
    else begin
      Hashtbl.remove t.by_len.(len) a;
      t.count <- t.count - 1;
      if len <= 24 - chunk_bits then begin
        let c0 = u32 a lsr (8 + chunk_bits) in
        let nc = 1 lsl (24 - chunk_bits - len) in
        for c = c0 to c0 + nc - 1 do
          if t.ent24.(c) == t.zero_ent then begin
            let cc = t.cover_chunk.(c) in
            if cc <> 0 && cc lsr 16 = len then begin
              let e', l' =
                cover t (Int32.of_int (c lsl (chunk_bits + 8))) ~below:len
              in
              t.cover_chunk.(c) <-
                (if e' = 0 then 0 else (l' lsl 16) lor e')
            end
          end
          else
            for off = 0 to chunk_slots - 1 do
              unset_slot t ((c lsl chunk_bits) lor off) len
            done
        done
      end
      else if len <= 24 then begin
        let base = u32 a lsr 8 in
        let n = 1 lsl (24 - len) in
        for i = base to base + n - 1 do
          unset_slot t i len
        done
      end
      else begin
        let slot = u32 a lsr 8 in
        let c = slot lsr chunk_bits and off = slot land chunk_mask in
        let ent = t.ent24.(c) in
        let cur = get16 ent off in
        (* the owner existed, so the slot must be spilled *)
        if cur land 0x8000 <> 0 then begin
          let b = cur land 0x7FFF in
          let base = u32 a land 0xFF in
          let w = 1 lsl (32 - len) in
          for j = base to base + w - 1 do
            let k = (b lsl 8) lor j in
            if Bytes.get_uint8 t.spill_len k = len then begin
              let e', l' =
                cover t (Int32.of_int ((slot lsl 8) lor j)) ~below:len
              in
              if l' = 0xFF || l' < 25 then
                t.spill_deep.(b) <- t.spill_deep.(b) - 1;
              set16 t.spill_ent k e';
              Bytes.set_uint8 t.spill_len k l'
            end
          done;
          if t.spill_deep.(b) = 0 then begin
            (* no /25+ owner left: every entry now holds the same
               <= /24 cover, so fold the block back into the slot *)
            let k0 = b lsl 8 in
            set16 ent off (get16 t.spill_ent k0);
            Bytes.set_uint8 t.len24.(c) off (Bytes.get_uint8 t.spill_len k0);
            t.free <- b :: t.free
          end
        end
      end;
      true
    end

  let find_exact t a ~len =
    if len < 0 || len > 32 then invalid_arg "Fib.V4.find_exact: len in [0,32]";
    match Hashtbl.find_opt t.by_len.(len) (mask len a) with
    | Some id -> Some (Pool.get t.pool id)
    | None -> None

  let lookup_id t a =
    let u = Int32.to_int a land 0xFFFFFFFF in
    let i = u lsr 8 in
    let c = i lsr chunk_bits in
    let e =
      Bytes.get_uint16_le
        (Array.unsafe_get t.ent24 c)
        ((i land chunk_mask) lsl 1)
    in
    if e = 0 then (Array.unsafe_get t.cover_chunk c land 0xFFFF) - 1
    else if e land 0x8000 = 0 then e - 1
    else
      let k = ((e land 0x7FFF) lsl 8) lor (u land 0xFF) in
      Bytes.get_uint16_le t.spill_ent (k lsl 1) - 1

  let lookup t a =
    let u = u32 a in
    let i = u lsr 8 in
    let c = i lsr chunk_bits and off = i land chunk_mask in
    let e = get16 t.ent24.(c) off in
    if e = 0 then begin
      let cc = t.cover_chunk.(c) in
      if cc = 0 then None
      else Some (cc lsr 16, Pool.get t.pool ((cc land 0xFFFF) - 1))
    end
    else if e land 0x8000 = 0 then
      Some (Bytes.get_uint8 t.len24.(c) off, Pool.get t.pool (e - 1))
    else begin
      let k = ((e land 0x7FFF) lsl 8) lor (u land 0xFF) in
      let e2 = get16 t.spill_ent k in
      if e2 = 0 then None
      else Some (Bytes.get_uint8 t.spill_len k, Pool.get t.pool (e2 - 1))
    end

  let fold f t init =
    let acc = ref init in
    Array.iteri
      (fun len tbl ->
        Hashtbl.iter
          (fun a id -> acc := f a len (Pool.get t.pool id) !acc)
          tbl)
      t.by_len;
    !acc

  type stats = {
    routes : int;
    next_hops : int;
    chunks : int;
    spill_blocks : int;
    lookup_bytes : int;
    total_bytes : int;
  }

  let stats t =
    let chunks = ref 0 in
    Array.iter (fun c -> if c != t.zero_ent then incr chunks) t.ent24;
    let lookup_bytes =
      (!chunks * 3 * chunk_slots)
      + Bytes.length t.spill_ent + Bytes.length t.spill_len
      + 8
        * (Array.length t.spill_deep + n_chunks (* cover words *)
          + (2 * n_chunks) (* chunk pointer arrays *)
          + Array.length t.pool.Pool.vals)
      + Bytes.length t.zero_ent + Bytes.length t.empty_len (* sentinels *)
    in
    let side =
      (* rough control-plane accounting: a per-length hashtable
         binding is ~4 words of buckets plus a boxed int32 key *)
      (t.count * 48) + (33 * 64) + (Hashtbl.length t.pool.Pool.ids * 48)
    in
    {
      routes = t.count;
      next_hops = t.pool.Pool.n;
      chunks = !chunks;
      spill_blocks = t.blocks - List.length t.free;
      lookup_bytes;
      total_bytes = lookup_bytes + side;
    }

  let memory_bytes t = (stats t).total_bytes
end

module V6 = struct
  (* Compressed stride-8 multibit trie with controlled prefix
     expansion: a prefix of length L lives at node depth
     d = (L-1)/8, expanded over 2^(8 - (L - 8d)) consecutive slots.
     Nodes hold sorted sparse parallel arrays (binary search) until
     [promote_at] distinct slots, then promote to dense 256-way
     arrays — realistic v6 tables are bushy near /32../48 and sparse
     elsewhere, which is exactly what this bounds. *)

  let promote_at = 48

  type node = {
    mutable dense : bool;
    mutable n : int;  (* populated slots while sparse *)
    mutable keys : int array;  (* sparse only: sorted slot indices *)
    mutable ents : int array;  (* id + 1, 0 = none *)
    mutable lens : int array;  (* owner length, -1 = none *)
    mutable kids : node array;  (* [nil] = no child *)
  }

  (* Shared "no child" sentinel; never mutated (inserts replace it
     with a fresh node before descending). *)
  let nil =
    { dense = false; n = 0; keys = [||]; ents = [||]; lens = [||]; kids = [||] }

  let sparse () =
    {
      dense = false;
      n = 0;
      keys = Array.make 4 0;
      ents = Array.make 4 0;
      lens = Array.make 4 (-1);
      kids = Array.make 4 nil;
    }

  type 'a t = {
    root : node;
    mutable default : int;  (* id + 1 for the /0 route, 0 = none *)
    pool : 'a Pool.t;
    by_len : (Ipaddr.V6.t, int) Hashtbl.t array;  (* 129 *)
    mutable count : int;
  }

  let create () =
    {
      root = sparse ();
      default = 0;
      pool = Pool.create ();
      by_len = Array.init 129 (fun _ -> Hashtbl.create 16);
      count = 0;
    }

  let size t = t.count
  let value t id = Pool.get t.pool id

  let byte_at hi lo d =
    if d < 8 then Int64.to_int (Int64.shift_right_logical hi (56 - (8 * d))) land 0xFF
    else Int64.to_int (Int64.shift_right_logical lo (120 - (8 * d))) land 0xFF

  let mask6 (hi, lo) len =
    if len <= 0 then (0L, 0L)
    else if len >= 128 then (hi, lo)
    else if len = 64 then (hi, 0L)
    else if len < 64 then (Int64.logand hi (Int64.shift_left (-1L) (64 - len)), 0L)
    else (hi, Int64.logand lo (Int64.shift_left (-1L) (128 - len)))

  (* Index of slot [b] in a sparse node, or -1. *)
  let sfind node b =
    let lo = ref 0 and hi = ref (node.n - 1) and res = ref (-1) in
    while !lo <= !hi do
      let mid = (!lo + !hi) lsr 1 in
      let k = node.keys.(mid) in
      if k = b then begin
        res := mid;
        lo := !hi + 1
      end
      else if k < b then lo := mid + 1
      else hi := mid - 1
    done;
    !res

  let promote node =
    let ents = Array.make 256 0 in
    let lens = Array.make 256 (-1) in
    let kids = Array.make 256 nil in
    for i = 0 to node.n - 1 do
      let b = node.keys.(i) in
      ents.(b) <- node.ents.(i);
      lens.(b) <- node.lens.(i);
      kids.(b) <- node.kids.(i)
    done;
    node.dense <- true;
    node.keys <- [||];
    node.ents <- ents;
    node.lens <- lens;
    node.kids <- kids

  (* Index of slot [b], creating it (possibly promoting the node). *)
  let ensure node b =
    if node.dense then b
    else
      let i = sfind node b in
      if i >= 0 then i
      else if node.n >= promote_at then begin
        promote node;
        b
      end
      else begin
        if node.n = Array.length node.keys then begin
          let cap = 2 * node.n in
          let gk = Array.make cap 0 in
          let ge = Array.make cap 0 in
          let gl = Array.make cap (-1) in
          let gc = Array.make cap nil in
          Array.blit node.keys 0 gk 0 node.n;
          Array.blit node.ents 0 ge 0 node.n;
          Array.blit node.lens 0 gl 0 node.n;
          Array.blit node.kids 0 gc 0 node.n;
          node.keys <- gk;
          node.ents <- ge;
          node.lens <- gl;
          node.kids <- gc
        end;
        let p = ref node.n in
        while !p > 0 && node.keys.(!p - 1) > b do
          node.keys.(!p) <- node.keys.(!p - 1);
          node.ents.(!p) <- node.ents.(!p - 1);
          node.lens.(!p) <- node.lens.(!p - 1);
          node.kids.(!p) <- node.kids.(!p - 1);
          decr p
        done;
        node.keys.(!p) <- b;
        node.ents.(!p) <- 0;
        node.lens.(!p) <- -1;
        node.kids.(!p) <- nil;
        node.n <- node.n + 1;
        !p
      end

  let sidx node b = if node.dense then b else sfind node b

  let insert t addr ~len v =
    if len < 0 || len > 128 then invalid_arg "Fib.V6.insert: len in [0,128]";
    let (hi, lo) = mask6 addr len in
    let id = Pool.intern t.pool ~limit:(max_int - 1) v in
    if not (Hashtbl.mem t.by_len.(len) (hi, lo)) then t.count <- t.count + 1;
    Hashtbl.replace t.by_len.(len) (hi, lo) id;
    if len = 0 then t.default <- id + 1
    else begin
      let d = (len - 1) / 8 in
      let rem = len - (d * 8) in
      let w = 1 lsl (8 - rem) in
      let node = ref t.root in
      for depth = 0 to d - 1 do
        let b = byte_at hi lo depth in
        let i = ensure !node b in
        let k = (!node).kids.(i) in
        if k == nil then begin
          let fresh = sparse () in
          (!node).kids.(i) <- fresh;
          node := fresh
        end
        else node := k
      done;
      let base = byte_at hi lo d land lnot (w - 1) in
      for b = base to base + w - 1 do
        let i = ensure !node b in
        if (!node).lens.(i) <= len then begin
          (!node).ents.(i) <- id + 1;
          (!node).lens.(i) <- len
        end
      done
    end

  (* Best remaining route covering the address whose top [floor] bits
     match the removed prefix and whose stride-d byte is [b], with
     length in (floor, below) — shorter covers live at shallower
     nodes and must not be written into this node. *)
  let cover6 t hi lo b ~floor ~below =
    let d = floor / 8 in
    let hi0, lo0 = mask6 (hi, lo) floor in
    let hi_b, lo_b =
      if d < 8 then
        (Int64.logor hi0 (Int64.shift_left (Int64.of_int b) (56 - (8 * d))), lo0)
      else
        (hi0, Int64.logor lo0 (Int64.shift_left (Int64.of_int b) (120 - (8 * d))))
    in
    let rec go l =
      if l <= floor then (0, -1)
      else
        match Hashtbl.find_opt t.by_len.(l) (mask6 (hi_b, lo_b) l) with
        | Some id -> (id + 1, l)
        | None -> go (l - 1)
    in
    go (below - 1)

  let remove t addr ~len =
    if len < 0 || len > 128 then invalid_arg "Fib.V6.remove: len in [0,128]";
    let (hi, lo) = mask6 addr len in
    if not (Hashtbl.mem t.by_len.(len) (hi, lo)) then false
    else begin
      Hashtbl.remove t.by_len.(len) (hi, lo);
      t.count <- t.count - 1;
      if len = 0 then t.default <- 0
      else begin
        let d = (len - 1) / 8 in
        let rem = len - (d * 8) in
        let w = 1 lsl (8 - rem) in
        let node = ref t.root and alive = ref true in
        for depth = 0 to d - 1 do
          if !alive then begin
            let b = byte_at hi lo depth in
            let i = sidx !node b in
            if i < 0 then alive := false
            else begin
              let k = (!node).kids.(i) in
              if k == nil then alive := false else node := k
            end
          end
        done;
        if !alive then begin
          let floor = d * 8 in
          let base = byte_at hi lo d land lnot (w - 1) in
          for b = base to base + w - 1 do
            let i = sidx !node b in
            if i >= 0 && (!node).lens.(i) = len then begin
              let e', l' = cover6 t hi lo b ~floor ~below:len in
              (!node).ents.(i) <- e';
              (!node).lens.(i) <- l'
            end
          done
        end
      end;
      true
    end

  let find_exact t addr ~len =
    if len < 0 || len > 128 then invalid_arg "Fib.V6.find_exact: len in [0,128]";
    match Hashtbl.find_opt t.by_len.(len) (mask6 addr len) with
    | Some id -> Some (Pool.get t.pool id)
    | None -> None

  let lookup_id t hi lo =
    let best = ref (t.default - 1) in
    let node = ref t.root and depth = ref 0 and stop = ref false in
    while not !stop do
      let nd = !node in
      let b = byte_at hi lo !depth in
      let i = if nd.dense then b else sfind nd b in
      if i < 0 then stop := true
      else begin
        if nd.ents.(i) <> 0 then best := nd.ents.(i) - 1;
        let k = nd.kids.(i) in
        if k == nil || !depth = 15 then stop := true
        else begin
          node := k;
          incr depth
        end
      end
    done;
    !best

  let lookup t (hi, lo) =
    let best = ref (t.default - 1) and best_len = ref 0 in
    let node = ref t.root and depth = ref 0 and stop = ref false in
    while not !stop do
      let nd = !node in
      let b = byte_at hi lo !depth in
      let i = if nd.dense then b else sfind nd b in
      if i < 0 then stop := true
      else begin
        if nd.ents.(i) <> 0 then begin
          best := nd.ents.(i) - 1;
          best_len := nd.lens.(i)
        end;
        let k = nd.kids.(i) in
        if k == nil || !depth = 15 then stop := true
        else begin
          node := k;
          incr depth
        end
      end
    done;
    if !best < 0 then None else Some (!best_len, Pool.get t.pool !best)

  let fold f t init =
    let acc = ref init in
    Array.iteri
      (fun len tbl ->
        Hashtbl.iter
          (fun a id -> acc := f a len (Pool.get t.pool id) !acc)
          tbl)
      t.by_len;
    !acc

  type stats = {
    routes : int;
    next_hops : int;
    nodes : int;
    dense_nodes : int;
    lookup_bytes : int;
    total_bytes : int;
  }

  let stats t =
    let nodes = ref 0 and dense = ref 0 and bytes = ref 0 in
    let rec go nd =
      if nd != nil then begin
        incr nodes;
        if nd.dense then incr dense;
        bytes :=
          !bytes
          + 8
            * (8 + Array.length nd.keys + Array.length nd.ents
              + Array.length nd.lens + Array.length nd.kids);
        Array.iter go nd.kids
      end
    in
    go t.root;
    let lookup_bytes = !bytes + (8 * Array.length t.pool.Pool.vals) in
    let side =
      (* tuple-of-boxed-int64 keys are ~9 words per binding *)
      (t.count * 96) + (129 * 64) + (Hashtbl.length t.pool.Pool.ids * 48)
    in
    {
      routes = t.count;
      next_hops = t.pool.Pool.n;
      nodes = !nodes;
      dense_nodes = !dense;
      lookup_bytes;
      total_bytes = lookup_bytes + side;
    }

  let memory_bytes t = (stats t).total_bytes
end
