type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable prev : ('k, 'v) node option;
  mutable next : ('k, 'v) node option;
}

type ('k, 'v) t = {
  hash : 'k -> int;
  equal : 'k -> 'k -> bool;
  index : (int, ('k, 'v) node list ref) Hashtbl.t;
      (* bucketed by caller-provided hash to honour custom equality *)
  cap : int;
  mutable head : ('k, 'v) node option;
  mutable tail : ('k, 'v) node option;
  mutable count : int;
}

let create ?(hash = Hashtbl.hash) ?(equal = ( = )) ~capacity () =
  if capacity < 1 then invalid_arg "Lru.create: capacity must be >= 1";
  {
    hash;
    equal;
    index = Hashtbl.create (2 * capacity);
    cap = capacity;
    head = None;
    tail = None;
    count = 0;
  }

let capacity t = t.cap
let size t = t.count

let bucket t k =
  match Hashtbl.find_opt t.index (t.hash k) with
  | Some l -> l
  | None ->
      let l = ref [] in
      Hashtbl.replace t.index (t.hash k) l;
      l

let find_node t k =
  match Hashtbl.find_opt t.index (t.hash k) with
  | None -> None
  | Some l -> List.find_opt (fun n -> t.equal n.key k) !l

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let drop_from_index t n =
  let h = t.hash n.key in
  match Hashtbl.find_opt t.index h with
  | None -> ()
  | Some l ->
      l := List.filter (fun x -> not (t.equal x.key n.key)) !l;
      if !l = [] then Hashtbl.remove t.index h

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some n ->
      unlink t n;
      drop_from_index t n;
      t.count <- t.count - 1

let insert t k v =
  match find_node t k with
  | Some n ->
      n.value <- v;
      unlink t n;
      push_front t n
  | None ->
      if t.count >= t.cap then evict_lru t;
      let n = { key = k; value = v; prev = None; next = None } in
      let l = bucket t k in
      l := n :: !l;
      push_front t n;
      t.count <- t.count + 1

let find t k =
  match find_node t k with
  | Some n ->
      unlink t n;
      push_front t n;
      Some n.value
  | None -> None

let mem t k = find_node t k <> None

let remove t k =
  match find_node t k with
  | Some n ->
      unlink t n;
      drop_from_index t n;
      t.count <- t.count - 1;
      true
  | None -> false

let clear t =
  Hashtbl.reset t.index;
  t.head <- None;
  t.tail <- None;
  t.count <- 0

let peek_lru t =
  match t.tail with None -> None | Some n -> Some (n.key, n.value)

let fold f t init =
  let rec go acc = function
    | None -> acc
    | Some n -> go (f n.key n.value acc) n.next
  in
  go init t.head
