(** Million-route forwarding tables.

    The {!Lpm_trie} behind {i F_32_match} / {i F_128_match} is a
    pointer-chasing binary trie: correct, but a 32-level dependent
    walk per lookup. At a million routes that is the forwarding
    bottleneck. This module provides the at-scale engines:

    - {!V4} is a DIR-24-8-style flat-array engine (Gupta, Lin &
      McKeown, "Routing lookups in hardware at memory access
      speeds"): a 16.7M-slot /24 table of packed 16-bit next-hop
      indices plus 256-entry spill blocks for prefixes longer than
      /24. A lookup is at most two array reads and never allocates.
    - {!V6} is a compressed stride-8 multibit trie: nodes start as
      sorted sparse arrays and promote to dense 256-way arrays as
      they fill, bounding both depth (≤ 16 strides) and memory at
      100k+ routes.

    Both engines intern next-hop values (a production FIB has
    millions of routes but only a handful of distinct next hops), do
    {e incremental} insert/remove (only the covered slots are
    touched, with an authoritative per-length side store to re-cover
    slots on withdrawal), and account their own memory so the bench
    can report bytes/route. The binary trie stays as the correctness
    oracle (see [test_fib.ml]). *)

module V4 : sig
  type 'a t

  val create : unit -> 'a t
  (** An empty table. Allocation is lazy: an empty table costs a few
      KB, and the /24 table materializes in 16k-slot chunks as routes
      arrive, so per-node [Env]s stay cheap. *)

  val size : 'a t -> int
  (** Number of installed prefixes. *)

  val insert : 'a t -> Ipaddr.V4.t -> len:int -> 'a -> unit
  (** [insert t addr ~len v] installs the [len]-bit prefix of [addr]
      ([len] in [\[0,32\]]; host bits are ignored), replacing any
      previous binding of exactly that prefix. Raises [Failure] past
      the engine's encoding limits (32767 distinct next-hop values,
      32768 live spill blocks). *)

  val remove : 'a t -> Ipaddr.V4.t -> len:int -> bool
  (** Withdraw an exact prefix; returns whether it was present.
      Covered slots fall back to the next-best covering route. *)

  val find_exact : 'a t -> Ipaddr.V4.t -> len:int -> 'a option

  val lookup : 'a t -> Ipaddr.V4.t -> (int * 'a) option
  (** Longest-prefix match: [(prefix_len, value)], like
      {!Lpm_trie.lookup}. *)

  val lookup_id : 'a t -> Ipaddr.V4.t -> int
  (** Allocation-free longest-prefix match: the interned next-hop id
      (resolve with {!value}), or [-1] when no route matches. This is
      the forwarding hot path. *)

  val value : 'a t -> int -> 'a
  (** Resolve an id returned by {!lookup_id}. Raises
      [Invalid_argument] on an id never handed out. *)

  val fold : (Ipaddr.V4.t -> int -> 'a -> 'acc -> 'acc) -> 'a t -> 'acc -> 'acc
  (** Fold over installed prefixes as [f addr len v acc]; order is
      unspecified. *)

  type stats = {
    routes : int;
    next_hops : int;  (** distinct interned values *)
    chunks : int;  (** materialized 16k-slot /24-table chunks (of 1024) *)
    spill_blocks : int;  (** live 256-entry blocks for /25–/32 routes *)
    lookup_bytes : int;
        (** bytes in the flat lookup structures (the data-plane
            footprint a line card would hold) *)
    total_bytes : int;
        (** [lookup_bytes] plus an estimate of the control-plane side
            store (per-length hash tables, interned values) *)
  }

  val stats : 'a t -> stats

  val memory_bytes : 'a t -> int
  (** [= (stats t).total_bytes]. *)
end

module V6 : sig
  type 'a t

  val create : unit -> 'a t
  val size : 'a t -> int

  val insert : 'a t -> Ipaddr.V6.t -> len:int -> 'a -> unit
  (** [len] in [\[0,128\]]; host bits are ignored. *)

  val remove : 'a t -> Ipaddr.V6.t -> len:int -> bool
  val find_exact : 'a t -> Ipaddr.V6.t -> len:int -> 'a option
  val lookup : 'a t -> Ipaddr.V6.t -> (int * 'a) option

  val lookup_id : 'a t -> int64 -> int64 -> int
  (** [lookup_id t hi lo]: longest-prefix match without constructing
      the address pair; interned id or [-1]. *)

  val value : 'a t -> int -> 'a

  val fold : (Ipaddr.V6.t -> int -> 'a -> 'acc -> 'acc) -> 'a t -> 'acc -> 'acc

  type stats = {
    routes : int;
    next_hops : int;
    nodes : int;  (** trie nodes *)
    dense_nodes : int;  (** nodes promoted to 256-way arrays *)
    lookup_bytes : int;
    total_bytes : int;
  }

  val stats : 'a t -> stats
  val memory_bytes : 'a t -> int
end
