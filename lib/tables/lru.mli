(** A generic bounded LRU map.

    The backing store for every cache in the repository whose key is
    not a content {!Name} (those use {!Content_store}): the DIP
    engine's hashed-name content store, and any per-flow state that
    must stay bounded per the §2.4 state-consumption rule. *)

type ('k, 'v) t

val create : ?hash:('k -> int) -> ?equal:('k -> 'k -> bool) -> capacity:int -> unit -> ('k, 'v) t
(** Holds at most [capacity] entries ([>= 1]); the least recently
    used entry is evicted on overflow. [hash]/[equal] default to the
    polymorphic ones. *)

val capacity : ('k, 'v) t -> int
val size : ('k, 'v) t -> int

val insert : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert or refresh. *)

val find : ('k, 'v) t -> 'k -> 'v option
(** A hit refreshes recency. *)

val mem : ('k, 'v) t -> 'k -> bool
(** No recency effect. *)

val remove : ('k, 'v) t -> 'k -> bool
val clear : ('k, 'v) t -> unit

val peek_lru : ('k, 'v) t -> ('k * 'v) option
(** The least-recently-used binding, without refreshing recency —
    what {!Custody_store} inspects before deciding to evict. *)

val fold : ('k -> 'v -> 'a -> 'a) -> ('k, 'v) t -> 'a -> 'a
(** Most recent first. *)
