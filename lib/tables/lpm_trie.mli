(** Longest-prefix-match binary trie.

    The forwarding table behind {i F_32_match} and {i F_128_match}:
    IP routers forward on the most specific matching prefix. The trie
    is generic over the value type and keyed on bit sequences so one
    implementation serves IPv4, IPv6, and the 32-bit hashed content
    names of the DIP prototype.

    Keys and prefixes are presented as bit accessors ([int -> bool],
    MSB first) plus a length, which avoids committing to an address
    representation here. *)

type 'a t

val create : unit -> 'a t
(** An empty table. *)

val size : 'a t -> int
(** Number of inserted prefixes. *)

val insert : 'a t -> bits:(int -> bool) -> len:int -> 'a -> unit
(** [insert t ~bits ~len v] binds the [len]-bit prefix to [v],
    replacing any previous binding of exactly that prefix. [len = 0]
    installs a default route. *)

val remove : 'a t -> bits:(int -> bool) -> len:int -> bool
(** Remove an exact prefix; returns whether it was present. Interior
    nodes left empty are pruned. *)

val find_exact : 'a t -> bits:(int -> bool) -> len:int -> 'a option
(** Exact-prefix lookup. *)

val lookup : 'a t -> bits:(int -> bool) -> len:int -> (int * 'a) option
(** [lookup t ~bits ~len] walks at most [len] key bits and returns
    [(prefix_len, value)] for the longest matching prefix, or [None]
    if not even a default route matches. *)

val lookup_ipv4 : 'a t -> int32 -> (int * 'a) option
(** [lookup_ipv4 t addr] is [lookup t ~bits:(Ipaddr.V4.bit addr)
    ~len:32] without the closure-per-bit cost: the 32 key bits are
    extracted by shifting directly, so a lookup allocates only the
    result pair. This is the hot-path entry for IPv4 tables and the
    baseline the {!Fib} bench compares against. *)

val fold : (int * bool list -> 'a -> 'b -> 'b) -> 'a t -> 'b -> 'b
(** Fold over all bound prefixes; the key is given as
    [(len, bits MSB-first)]. Order is unspecified. *)

val depth : 'a t -> int
(** Height of the trie — a cheap structural statistic used by the
    table-scaling ablation. *)
