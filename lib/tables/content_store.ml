(* Classic doubly-linked-list LRU with a hashtable index keyed on the
   canonical name string. *)

type 'v node = {
  key : string;
  mutable value : 'v;
  mutable prev : 'v node option;
  mutable next : 'v node option;
}

type 'v t = {
  index : (string, 'v node) Hashtbl.t;
  cap : int;
  mutable head : 'v node option; (* most recent *)
  mutable tail : 'v node option; (* least recent *)
  mutable hit_count : int;
  mutable miss_count : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Content_store.create: capacity must be >= 1";
  {
    index = Hashtbl.create (2 * capacity);
    cap = capacity;
    head = None;
    tail = None;
    hit_count = 0;
    miss_count = 0;
  }

let size t = Hashtbl.length t.index
let capacity t = t.cap
let hits t = t.hit_count
let misses t = t.miss_count

let unlink t n =
  (match n.prev with
  | Some p -> p.next <- n.next
  | None -> t.head <- n.next);
  (match n.next with
  | Some s -> s.prev <- n.prev
  | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let touch t n =
  unlink t n;
  push_front t n

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some n ->
      unlink t n;
      Hashtbl.remove t.index n.key

let insert t name v =
  let key = Name.to_string name in
  match Hashtbl.find_opt t.index key with
  | Some n ->
      n.value <- v;
      touch t n
  | None ->
      if Hashtbl.length t.index >= t.cap then evict_lru t;
      let n = { key; value = v; prev = None; next = None } in
      Hashtbl.replace t.index key n;
      push_front t n

let find t name =
  match Hashtbl.find_opt t.index (Name.to_string name) with
  | Some n ->
      t.hit_count <- t.hit_count + 1;
      touch t n;
      Some n.value
  | None ->
      t.miss_count <- t.miss_count + 1;
      None

let mem t name = Hashtbl.mem t.index (Name.to_string name)

let remove t name =
  match Hashtbl.find_opt t.index (Name.to_string name) with
  | Some n ->
      unlink t n;
      Hashtbl.remove t.index n.key;
      true
  | None -> false

let clear t =
  Hashtbl.reset t.index;
  t.head <- None;
  t.tail <- None
