type 'a node = {
  mutable value : 'a option;
  mutable zero : 'a node option;
  mutable one : 'a node option;
}

type 'a t = { root : 'a node; mutable count : int }

let fresh () = { value = None; zero = None; one = None }
let create () = { root = fresh (); count = 0 }
let size t = t.count

let child node bit = if bit then node.one else node.zero

let set_child node bit c =
  if bit then node.one <- c else node.zero <- c

let insert t ~bits ~len v =
  if len < 0 then invalid_arg "Lpm_trie.insert: negative length";
  let rec go node i =
    if i = len then begin
      if node.value = None then t.count <- t.count + 1;
      node.value <- Some v
    end
    else
      let b = bits i in
      let next =
        match child node b with
        | Some c -> c
        | None ->
            let c = fresh () in
            set_child node b (Some c);
            c
      in
      go next (i + 1)
  in
  go t.root 0

let find_exact t ~bits ~len =
  let rec go node i =
    if i = len then node.value
    else
      match child node (bits i) with None -> None | Some c -> go c (i + 1)
  in
  go t.root 0

let remove t ~bits ~len =
  (* Returns (removed, prune) going back up. *)
  let rec go node i =
    if i = len then
      match node.value with
      | None -> (false, false)
      | Some _ ->
          node.value <- None;
          t.count <- t.count - 1;
          (true, node.zero = None && node.one = None)
    else
      match child node (bits i) with
      | None -> (false, false)
      | Some c ->
          let removed, prune = go c (i + 1) in
          if prune then set_child node (bits i) None;
          ( removed,
            removed && node.value = None && node.zero = None && node.one = None
          )
  in
  fst (go t.root 0)

let lookup t ~bits ~len =
  let rec go node i best =
    let best =
      match node.value with Some v -> Some (i, v) | None -> best
    in
    if i = len then best
    else
      match child node (bits i) with
      | None -> best
      | Some c -> go c (i + 1) best
  in
  go t.root 0 None

(* IPv4 fast path: walking the 32 bits of an [int32] directly avoids
   the closure the [~bits] accessor costs per level on the forwarding
   hot path. The running best reuses the node's own [value] option, so
   the only allocation is the final [(len, v)] pair on a hit. *)
let lookup_ipv4 t key =
  let k = Int32.to_int key land 0xFFFFFFFF in
  let rec go node i best_len best =
    let best_len, best =
      match node.value with Some _ -> (i, node.value) | None -> (best_len, best)
    in
    if i = 32 then (best_len, best)
    else
      let c =
        if k land (1 lsl (31 - i)) <> 0 then node.one else node.zero
      in
      match c with None -> (best_len, best) | Some c -> go c (i + 1) best_len best
  in
  match go t.root 0 (-1) None with
  | _, None -> None
  | l, Some v -> Some (l, v)

let fold f t init =
  let rec go node path_rev len acc =
    let acc =
      match node.value with
      | Some v -> f (len, List.rev path_rev) v acc
      | None -> acc
    in
    let acc =
      match node.zero with
      | Some c -> go c (false :: path_rev) (len + 1) acc
      | None -> acc
    in
    match node.one with
    | Some c -> go c (true :: path_rev) (len + 1) acc
    | None -> acc
  in
  go t.root [] 0 init

let depth t =
  let rec go node =
    let d c = match c with None -> 0 | Some n -> 1 + go n in
    max (d node.zero) (d node.one)
  in
  go t.root
