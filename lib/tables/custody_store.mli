(** A bounded store for custodial packets.

    Wraps {!Lru} with byte accounting and explicit admission: a
    custodian must know whether the store {e accepted} a bundle
    (custody taken, ACK upstream) or {e rejected} it (upstream keeps
    custody) — the silent eviction of a plain LRU cache would lose
    the only stored copy without anyone noticing. Both an entry-count
    bound and a byte bound hold at all times; admission pre-evicts
    least-recently-used bundles (counted) until the new one fits, and
    a bundle larger than [max_bytes] is rejected outright. *)

type ('k, 'v) t

(** Store transitions, for wiring gauges/Flight instants. *)
type event = Take | Release | Evict | Reject

type counters = {
  takes : int;
  releases : int;
  evicts : int;
  rejects : int;
}

val create :
  ?hash:('k -> int) ->
  ?equal:('k -> 'k -> bool) ->
  capacity:int ->
  max_bytes:int ->
  size:('v -> int) ->
  unit ->
  ('k, 'v) t
(** [size] measures a stored value in bytes (charged on admission,
    refunded on release/evict). Both bounds must be [>= 1]. *)

val capacity : ('k, 'v) t -> int
val max_bytes : ('k, 'v) t -> int

val size : ('k, 'v) t -> int
(** Live entries — never exceeds [capacity]. *)

val bytes : ('k, 'v) t -> int
(** Live bytes — never exceeds [max_bytes]. *)

val high_water : ('k, 'v) t -> int
(** Maximum {!size} ever observed (the bounded-occupancy evidence the
    benchmark reports). *)

val high_water_bytes : ('k, 'v) t -> int

val mem : ('k, 'v) t -> 'k -> bool
val find : ('k, 'v) t -> 'k -> 'v option
(** A hit refreshes recency. *)

val take : ('k, 'v) t -> 'k -> 'v -> [ `Stored | `Rejected ]
(** Admit a bundle, evicting LRU entries as needed. [`Rejected] only
    when the bundle alone exceeds [max_bytes]. Re-taking a held key
    replaces the stored value. *)

val release : ('k, 'v) t -> 'k -> bool
(** Downstream took over (custody ACK): drop our copy. [false] if the
    key was not held. *)

val evict_lru : ('k, 'v) t -> 'k option
(** Forcibly evict the least-recently-used bundle (counted as an
    eviction). *)

val fold : ('k -> 'v -> 'a -> 'a) -> ('k, 'v) t -> 'a -> 'a
(** Most recently used first. *)

val counters : ('k, 'v) t -> counters

val set_observer : ('k, 'v) t -> (event -> unit) -> unit
(** Called on every transition, after the store's own accounting —
    the hook {!Dip_core.Custody} uses for depth gauges and Flight
    instants. *)
