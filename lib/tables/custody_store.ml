(* A bounded custody store on the Lru spine: entry-count *and* byte
   accounting, explicit accept/reject, and eviction counters — the
   §2.4 state-consumption rule applied to custodial packets.

   The store pre-evicts before every insert, so the underlying Lru
   never hits its own silent-eviction path: bytes and entry counts
   stay exact. *)

type event = Take | Release | Evict | Reject

type counters = {
  takes : int;
  releases : int;
  evicts : int;
  rejects : int;
}

type ('k, 'v) t = {
  lru : ('k, 'v) Lru.t;
  cap : int;
  max_bytes : int;
  size_of : 'v -> int;
  mutable bytes : int;
  mutable high_water : int;
  mutable high_water_bytes : int;
  mutable takes : int;
  mutable releases : int;
  mutable evicts : int;
  mutable rejects : int;
  mutable observer : (event -> unit) option;
}

let create ?hash ?equal ~capacity ~max_bytes ~size () =
  if capacity < 1 then invalid_arg "Custody_store.create: capacity must be >= 1";
  if max_bytes < 1 then invalid_arg "Custody_store.create: max_bytes must be >= 1";
  {
    lru = Lru.create ?hash ?equal ~capacity ();
    cap = capacity;
    max_bytes;
    size_of = size;
    bytes = 0;
    high_water = 0;
    high_water_bytes = 0;
    takes = 0;
    releases = 0;
    evicts = 0;
    rejects = 0;
    observer = None;
  }

let capacity t = t.cap
let max_bytes t = t.max_bytes
let size t = Lru.size t.lru
let bytes t = t.bytes
let high_water t = t.high_water
let high_water_bytes t = t.high_water_bytes
let mem t k = Lru.mem t.lru k
let find t k = Lru.find t.lru k
let set_observer t f = t.observer <- Some f

let notify t ev = match t.observer with Some f -> f ev | None -> ()

let evict_lru t =
  match Lru.peek_lru t.lru with
  | None -> None
  | Some (k, v) ->
      ignore (Lru.remove t.lru k);
      t.bytes <- t.bytes - t.size_of v;
      t.evicts <- t.evicts + 1;
      notify t Evict;
      Some k

let release t k =
  match Lru.find t.lru k with
  | None -> false
  | Some v ->
      ignore (Lru.remove t.lru k);
      t.bytes <- t.bytes - t.size_of v;
      t.releases <- t.releases + 1;
      notify t Release;
      true

let take t k v =
  let sz = t.size_of v in
  if sz > t.max_bytes then begin
    t.rejects <- t.rejects + 1;
    notify t Reject;
    `Rejected
  end
  else begin
    (* Re-taking a held key replaces the stored copy (an upstream
       retransmission carries the freshest bytes). *)
    (match Lru.find t.lru k with
    | Some old ->
        ignore (Lru.remove t.lru k);
        t.bytes <- t.bytes - t.size_of old
    | None -> ());
    while Lru.size t.lru >= t.cap || t.bytes + sz > t.max_bytes do
      ignore (evict_lru t)
    done;
    Lru.insert t.lru k v;
    t.bytes <- t.bytes + sz;
    t.takes <- t.takes + 1;
    if Lru.size t.lru > t.high_water then t.high_water <- Lru.size t.lru;
    if t.bytes > t.high_water_bytes then t.high_water_bytes <- t.bytes;
    notify t Take;
    `Stored
  end

let fold f t init = Lru.fold f t.lru init

let counters t =
  { takes = t.takes; releases = t.releases; evicts = t.evicts;
    rejects = t.rejects }
