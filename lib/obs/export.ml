module M = Metrics

let sanitize name =
  let ok c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_' || c = ':'
  in
  let s = String.map (fun c -> if ok c then c else '_') name in
  if s = "" then "_"
  else if s.[0] >= '0' && s.[0] <= '9' then "_" ^ s
  else s

(* Render a float the way Prometheus and JSON both accept: finite
   values as decimals, infinity spelled out. *)
let float_str v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

let prometheus m =
  let b = Buffer.create 1024 in
  List.iter
    (fun (name, help, v) ->
      let n = sanitize name in
      if help <> "" then Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" n help);
      match v with
      | M.Counter_v c ->
          Buffer.add_string b (Printf.sprintf "# TYPE %s counter\n%s %d\n" n n c)
      | M.Gauge_v g ->
          Buffer.add_string b (Printf.sprintf "# TYPE %s gauge\n%s %d\n" n n g)
      | M.Histogram_v h ->
          Buffer.add_string b (Printf.sprintf "# TYPE %s histogram\n" n);
          let acc = ref 0 in
          Array.iteri
            (fun i c ->
              acc := !acc + c;
              (* Only emit the buckets up to the last occupied one,
                 plus +Inf: 40 mostly-empty series per histogram help
                 nobody. *)
              if c > 0 then
                Buffer.add_string b
                  (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" n
                     (float_str (M.Histogram.bound i))
                     !acc))
            h.M.counts;
          Buffer.add_string b
            (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" n h.M.count);
          Buffer.add_string b (Printf.sprintf "%s_sum %s\n" n (float_str h.M.sum));
          Buffer.add_string b (Printf.sprintf "%s_count %d\n" n h.M.count))
    (M.snapshot m);
  Buffer.contents b

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_lines m =
  let b = Buffer.create 1024 in
  List.iter
    (fun (name, help, v) ->
      let head kind =
        Printf.sprintf "{\"name\":\"%s\",\"type\":\"%s\"" (json_escape name) kind
      in
      let help_field () =
        if help = "" then "" else Printf.sprintf ",\"help\":\"%s\"" (json_escape help)
      in
      (match v with
      | M.Counter_v c ->
          Buffer.add_string b
            (Printf.sprintf "%s,\"value\":%d%s}" (head "counter") c (help_field ()))
      | M.Gauge_v g ->
          Buffer.add_string b
            (Printf.sprintf "%s,\"value\":%d%s}" (head "gauge") g (help_field ()))
      | M.Histogram_v h ->
          Buffer.add_string b (head "histogram");
          Buffer.add_string b
            (Printf.sprintf ",\"count\":%d,\"sum\":%s,\"max\":%s,\"buckets\":["
               h.M.count (float_str h.M.sum) (float_str h.M.max_value));
          let first = ref true in
          Array.iteri
            (fun i c ->
              if c > 0 then begin
                if not !first then Buffer.add_char b ',';
                first := false;
                Buffer.add_string b
                  (Printf.sprintf "{\"le\":%s,\"n\":%d}"
                     (if Float.is_finite (M.Histogram.bound i) then
                        float_str (M.Histogram.bound i)
                      else "\"+Inf\"")
                     c)
              end)
            h.M.counts;
          Buffer.add_string b (Printf.sprintf "]%s}" (help_field ())));
      Buffer.add_char b '\n')
    (M.snapshot m);
  Buffer.contents b

(* --- flight-recorder renderings ----------------------------------- *)

(* Chrome trace-event JSON (the about://tracing / Perfetto format):
   spans become complete ("X") events with microsecond ts/dur, the
   start recovered as end - duration; instants become "i"; counters
   become "C". Timestamps are rebased to the earliest start so the
   trace opens at t=0. *)

let chrome_trace ?(pid_names = []) events =
  let start_ns e =
    match Flight.id_kind e.Flight.ev_id with
    | Flight.Span -> e.Flight.ev_ts - e.Flight.ev_a0
    | Flight.Instant | Flight.Counter -> e.Flight.ev_ts
  in
  let t0 =
    List.fold_left (fun acc e -> Stdlib.min acc (start_ns e)) max_int events
  in
  let t0 = if t0 = max_int then 0 else t0 in
  let us ns = Printf.sprintf "%.3f" (float_of_int (ns - t0) /. 1e3) in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\":[";
  let first = ref true in
  let emit s =
    if not !first then Buffer.add_char b ',';
    first := false;
    Buffer.add_string b s
  in
  List.iter
    (fun (p, name) ->
      emit
        (Printf.sprintf
           "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\
            \"args\":{\"name\":\"%s\"}}"
           p (json_escape name)))
    pid_names;
  let threads = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let key = (e.Flight.ev_pid, e.Flight.ev_tid) in
      if not (Hashtbl.mem threads key) then begin
        Hashtbl.add threads key ();
        emit
          (Printf.sprintf
             "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\
              \"args\":{\"name\":\"domain %d\"}}"
             e.Flight.ev_pid e.Flight.ev_tid e.Flight.ev_tid)
      end)
    events;
  List.iter
    (fun e ->
      let name = json_escape (Flight.id_name e.Flight.ev_id) in
      match Flight.id_kind e.Flight.ev_id with
      | Flight.Span ->
          emit
            (Printf.sprintf
               "{\"name\":\"%s\",\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\
                \"ts\":%s,\"dur\":%.3f,\"args\":{\"a1\":%d,\"a2\":%d}}"
               name e.Flight.ev_pid e.Flight.ev_tid
               (us (e.Flight.ev_ts - e.Flight.ev_a0))
               (float_of_int e.Flight.ev_a0 /. 1e3)
               e.Flight.ev_a1 e.Flight.ev_a2)
      | Flight.Instant ->
          emit
            (Printf.sprintf
               "{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"pid\":%d,\
                \"tid\":%d,\"ts\":%s,\"args\":{\"a0\":%d,\"a1\":%d,\
                \"a2\":%d}}"
               name e.Flight.ev_pid e.Flight.ev_tid (us e.Flight.ev_ts)
               e.Flight.ev_a0 e.Flight.ev_a1 e.Flight.ev_a2)
      | Flight.Counter ->
          emit
            (Printf.sprintf
               "{\"name\":\"%s\",\"ph\":\"C\",\"pid\":%d,\"tid\":%d,\
                \"ts\":%s,\"args\":{\"value\":%d}}"
               name e.Flight.ev_pid e.Flight.ev_tid (us e.Flight.ev_ts)
               e.Flight.ev_a0))
    events;
  Buffer.add_string b "]}";
  Buffer.contents b

let timeline events =
  let t0 =
    List.fold_left
      (fun acc e ->
        let s =
          match Flight.id_kind e.Flight.ev_id with
          | Flight.Span -> e.Flight.ev_ts - e.Flight.ev_a0
          | Flight.Instant | Flight.Counter -> e.Flight.ev_ts
        in
        Stdlib.min acc s)
      max_int events
  in
  let t0 = if t0 = max_int then 0 else t0 in
  let b = Buffer.create 4096 in
  List.iter
    (fun e ->
      let name = Flight.id_name e.Flight.ev_id in
      let at = float_of_int (e.Flight.ev_ts - t0) /. 1e3 in
      (match Flight.id_kind e.Flight.ev_id with
      | Flight.Span ->
          Buffer.add_string b
            (Printf.sprintf
               "%12.3f us  pid=%d tid=%d  %-28s dur=%.3f us a1=%d a2=%d" at
               e.Flight.ev_pid e.Flight.ev_tid name
               (float_of_int e.Flight.ev_a0 /. 1e3)
               e.Flight.ev_a1 e.Flight.ev_a2)
      | Flight.Instant ->
          Buffer.add_string b
            (Printf.sprintf
               "%12.3f us  pid=%d tid=%d  %-28s a0=%d a1=%d a2=%d" at
               e.Flight.ev_pid e.Flight.ev_tid name e.Flight.ev_a0
               e.Flight.ev_a1 e.Flight.ev_a2)
      | Flight.Counter ->
          Buffer.add_string b
            (Printf.sprintf "%12.3f us  pid=%d tid=%d  %-28s value=%d" at
               e.Flight.ev_pid e.Flight.ev_tid name e.Flight.ev_a0));
      Buffer.add_char b '\n')
    events;
  Buffer.contents b

let table m =
  let t =
    Dip_stdext.Tabular.create
      ~aligns:
        [ Dip_stdext.Tabular.Left; Dip_stdext.Tabular.Left;
          Dip_stdext.Tabular.Right ]
      [ "metric"; "type"; "value" ]
  in
  List.iter
    (fun (name, _help, v) ->
      match v with
      | M.Counter_v c ->
          Dip_stdext.Tabular.add_row t [ name; "counter"; string_of_int c ]
      | M.Gauge_v g ->
          Dip_stdext.Tabular.add_row t [ name; "gauge"; string_of_int g ]
      | M.Histogram_v h ->
          let summary =
            if h.M.count = 0 then "n=0"
            else
              (* Re-derive the quantile estimates from the snapshot
                 counts (same arithmetic as Histogram.quantile). *)
              let quant q =
                let rank =
                  Stdlib.max 1
                    (int_of_float (Float.ceil (q *. float_of_int h.M.count)))
                in
                let acc = ref 0 and ret = ref h.M.max_value in
                (try
                   Array.iteri
                     (fun i c ->
                       acc := !acc + c;
                       if !acc >= rank then begin
                         ret := Float.min (M.Histogram.bound i) h.M.max_value;
                         raise Exit
                       end)
                     h.M.counts
                 with Exit -> ());
                !ret
              in
              Printf.sprintf "n=%d mean=%.1f p50<=%s p99<=%s max=%s" h.M.count
                (h.M.sum /. float_of_int h.M.count)
                (float_str (quant 0.50)) (float_str (quant 0.99))
                (float_str h.M.max_value)
          in
          Dip_stdext.Tabular.add_row t [ name; "histogram"; summary ])
    (M.snapshot m);
  Dip_stdext.Tabular.render t
