module M = Metrics

let sanitize name =
  let ok c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_' || c = ':'
  in
  let s = String.map (fun c -> if ok c then c else '_') name in
  if s = "" then "_"
  else if s.[0] >= '0' && s.[0] <= '9' then "_" ^ s
  else s

(* Render a float the way Prometheus and JSON both accept: finite
   values as decimals, infinity spelled out. *)
let float_str v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

let prometheus m =
  let b = Buffer.create 1024 in
  List.iter
    (fun (name, help, v) ->
      let n = sanitize name in
      if help <> "" then Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" n help);
      match v with
      | M.Counter_v c ->
          Buffer.add_string b (Printf.sprintf "# TYPE %s counter\n%s %d\n" n n c)
      | M.Gauge_v g ->
          Buffer.add_string b (Printf.sprintf "# TYPE %s gauge\n%s %d\n" n n g)
      | M.Histogram_v h ->
          Buffer.add_string b (Printf.sprintf "# TYPE %s histogram\n" n);
          let acc = ref 0 in
          Array.iteri
            (fun i c ->
              acc := !acc + c;
              (* Only emit the buckets up to the last occupied one,
                 plus +Inf: 40 mostly-empty series per histogram help
                 nobody. *)
              if c > 0 then
                Buffer.add_string b
                  (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" n
                     (float_str (M.Histogram.bound i))
                     !acc))
            h.M.counts;
          Buffer.add_string b
            (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" n h.M.count);
          Buffer.add_string b (Printf.sprintf "%s_sum %s\n" n (float_str h.M.sum));
          Buffer.add_string b (Printf.sprintf "%s_count %d\n" n h.M.count))
    (M.snapshot m);
  Buffer.contents b

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_lines m =
  let b = Buffer.create 1024 in
  List.iter
    (fun (name, help, v) ->
      let head kind =
        Printf.sprintf "{\"name\":\"%s\",\"type\":\"%s\"" (json_escape name) kind
      in
      let help_field () =
        if help = "" then "" else Printf.sprintf ",\"help\":\"%s\"" (json_escape help)
      in
      (match v with
      | M.Counter_v c ->
          Buffer.add_string b
            (Printf.sprintf "%s,\"value\":%d%s}" (head "counter") c (help_field ()))
      | M.Gauge_v g ->
          Buffer.add_string b
            (Printf.sprintf "%s,\"value\":%d%s}" (head "gauge") g (help_field ()))
      | M.Histogram_v h ->
          Buffer.add_string b (head "histogram");
          Buffer.add_string b
            (Printf.sprintf ",\"count\":%d,\"sum\":%s,\"max\":%s,\"buckets\":["
               h.M.count (float_str h.M.sum) (float_str h.M.max_value));
          let first = ref true in
          Array.iteri
            (fun i c ->
              if c > 0 then begin
                if not !first then Buffer.add_char b ',';
                first := false;
                Buffer.add_string b
                  (Printf.sprintf "{\"le\":%s,\"n\":%d}"
                     (if Float.is_finite (M.Histogram.bound i) then
                        float_str (M.Histogram.bound i)
                      else "\"+Inf\"")
                     c)
              end)
            h.M.counts;
          Buffer.add_string b (Printf.sprintf "]%s}" (help_field ())));
      Buffer.add_char b '\n')
    (M.snapshot m);
  Buffer.contents b

let table m =
  let t =
    Dip_stdext.Tabular.create
      ~aligns:
        [ Dip_stdext.Tabular.Left; Dip_stdext.Tabular.Left;
          Dip_stdext.Tabular.Right ]
      [ "metric"; "type"; "value" ]
  in
  List.iter
    (fun (name, _help, v) ->
      match v with
      | M.Counter_v c ->
          Dip_stdext.Tabular.add_row t [ name; "counter"; string_of_int c ]
      | M.Gauge_v g ->
          Dip_stdext.Tabular.add_row t [ name; "gauge"; string_of_int g ]
      | M.Histogram_v h ->
          let summary =
            if h.M.count = 0 then "n=0"
            else
              (* Re-derive the quantile estimates from the snapshot
                 counts (same arithmetic as Histogram.quantile). *)
              let quant q =
                let rank =
                  Stdlib.max 1
                    (int_of_float (Float.ceil (q *. float_of_int h.M.count)))
                in
                let acc = ref 0 and ret = ref h.M.max_value in
                (try
                   Array.iteri
                     (fun i c ->
                       acc := !acc + c;
                       if !acc >= rank then begin
                         ret := Float.min (M.Histogram.bound i) h.M.max_value;
                         raise Exit
                       end)
                     h.M.counts
                 with Exit -> ());
                !ret
              in
              Printf.sprintf "n=%d mean=%.1f p50<=%s p99<=%s max=%s" h.M.count
                (h.M.sum /. float_of_int h.M.count)
                (float_str (quant 0.50)) (float_str (quant 0.99))
                (float_str h.M.max_value)
          in
          Dip_stdext.Tabular.add_row t [ name; "histogram"; summary ])
    (M.snapshot m);
  Dip_stdext.Tabular.render t
