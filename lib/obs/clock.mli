(** Monotonic nanosecond clock for span timing.

    A thin wrapper over the CLOCK_MONOTONIC stub that ships with the
    benchmark toolkit: a single [@@noalloc] external, so reading the
    clock costs tens of nanoseconds and never allocates — cheap
    enough for sampled per-operation spans on the packet hot path. *)

val now_ns : unit -> int64
(** Monotonic time in nanoseconds from an arbitrary origin. Only
    differences are meaningful. *)

val elapsed_ns : int64 -> int
(** [elapsed_ns t0] is [now_ns () - t0] as an [int] (nanosecond
    deltas fit comfortably in 63 bits). *)
