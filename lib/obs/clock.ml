let now_ns = Monotonic_clock.now

let elapsed_ns t0 = Int64.to_int (Int64.sub (Monotonic_clock.now ()) t0)
