(** An allocation-free, per-domain flight recorder.

    A {!ring} is a fixed-capacity circular buffer of compact binary
    events: a monotonic timestamp ({!Clock.now_ns}, truncated to the
    native 63-bit int — good for ~146 years of uptime), a
    pre-registered event {!id}, and three integer operands. Recording
    is plain stores into parallel [int array]s on the recording
    domain — no locks, no boxing, no allocation — and the ring
    overwrites its oldest events when full, so a recorder can stay
    armed forever and always hold the most recent window.

    Concurrency contract: a ring has {e one} writer (the domain it
    was created for). Readers ({!events}, {!merge}) must run when the
    writer is quiescent — the same moment {!Dip_mcore.Pool.counters}
    is exact. There is no seqlock: the single-writer/quiescent-reader
    discipline is the whole synchronization story, which is what
    keeps {!record} to five stores and an increment.

    Span convention: a span is recorded {e once, at its end}, with
    its duration in nanoseconds as operand [a0] (the timestamp is the
    end time). This avoids begin/end pairing across overwrites — a
    half-overwritten span cannot exist — and lets exporters recover
    the start time as [ts - a0].

    Event ids are registered once, process-wide ({!register} is the
    only locking operation in the module; call it at module
    initialization, not on the hot path). *)

type kind =
  | Instant  (** a point event; operands are free-form *)
  | Span  (** recorded at span end; [a0] = duration in ns *)
  | Counter  (** a sampled value; [a0] = the value *)

type id
(** A registered event type: interned name + {!kind}. *)

val register : ?kind:kind -> string -> id
(** [register ?kind name] interns [name] (default kind {!Instant})
    and returns its id. Registering the same name again returns the
    same id; the kind of the first registration wins. Thread-safe. *)

val id_name : id -> string
val id_kind : id -> kind

val registered : unit -> (string * kind) list
(** Every event type registered so far, in registration order. *)

type ring

val default_capacity : int
(** 16384 events (512 KiB of payload per ring). *)

val create : ?capacity:int -> pid:int -> tid:int -> unit -> ring
(** [create ~pid ~tid ()] allocates a ring whose events carry the
    given process/thread labels (Chrome-trace convention: [pid] = a
    node or pool, [tid] = a domain within it). [capacity] (default
    {!default_capacity}) is rounded up to a power of two, minimum
    8. *)

val record : ring -> id -> int -> int -> int -> unit
(** [record t id a0 a1 a2] stamps the current monotonic time and
    stores one event, overwriting the oldest if the ring is full.
    Plain stores only; must be called from the ring's writer
    domain. *)

val now : unit -> int
(** The monotonic clock as a native int, for span bookkeeping:
    [record t id (now () - t0) a1 a2] ends a span opened at
    [let t0 = now ()]. *)

val pid : ring -> int
val tid : ring -> int

val capacity : ring -> int
(** The rounded (power-of-two) capacity. *)

val recorded : ring -> int
(** Total events ever recorded, including overwritten ones. *)

val dropped : ring -> int
(** Events lost to overwriting: [max 0 (recorded - capacity)]. *)

val clear : ring -> unit
(** Forget everything recorded so far (writer-domain only). *)

type event = {
  ev_ts : int;  (** monotonic ns (span: end time) *)
  ev_id : id;
  ev_pid : int;
  ev_tid : int;
  ev_a0 : int;
  ev_a1 : int;
  ev_a2 : int;
}

val events : ring -> event list
(** Drain (non-destructively): the surviving events, oldest first —
    timestamp-monotone by construction, since slots are written in
    time order. Call only when the writer is quiescent. *)

val merge : ring list -> event list
(** {!events} of every ring, merged into one timeline sorted by
    timestamp (stable, so same-timestamp events keep ring order). *)
