type counter = { mutable c : int }
type gauge = { mutable g : int }

let nbuckets = 40

type histogram = {
  slots : int array; (* length nbuckets *)
  mutable hcount : int;
  mutable hsum : float;
  mutable hmax : float;
}

type instrument = C of counter | G of gauge | H of histogram

type t = {
  table : (string, string * instrument) Hashtbl.t; (* name -> help, handle *)
}

let create () = { table = Hashtbl.create 64 }

let kind_name = function C _ -> "counter" | G _ -> "gauge" | H _ -> "histogram"

let register ?(help = "") t name fresh =
  match Hashtbl.find_opt t.table name with
  | Some (_, existing) -> existing
  | None ->
      let i = fresh () in
      Hashtbl.replace t.table name (help, i);
      i

let counter ?help t name =
  match register ?help t name (fun () -> C { c = 0 }) with
  | C c -> c
  | i ->
      invalid_arg
        (Printf.sprintf "Metrics.counter: %S is already a %s" name (kind_name i))

let gauge ?help t name =
  match register ?help t name (fun () -> G { g = 0 }) with
  | G g -> g
  | i ->
      invalid_arg
        (Printf.sprintf "Metrics.gauge: %S is already a %s" name (kind_name i))

let histogram ?help t name =
  match
    register ?help t name (fun () ->
        H { slots = Array.make nbuckets 0; hcount = 0; hsum = 0.0; hmax = 0.0 })
  with
  | H h -> h
  | i ->
      invalid_arg
        (Printf.sprintf "Metrics.histogram: %S is already a %s" name
           (kind_name i))

module Counter = struct
  let incr ?(by = 1) c = c.c <- c.c + by
  let get c = c.c
end

module Gauge = struct
  let set g v = g.g <- v
  let get g = g.g
end

module Histogram = struct
  let buckets = nbuckets

  let bound i =
    if i >= nbuckets - 1 then Float.infinity else Float.of_int (1 lsl i)

  (* Bucket 0: v < 1; bucket i: 2^(i-1) <= v < 2^i; last bucket:
     everything beyond. frexp gives the binary exponent directly. *)
  let index v =
    if v < 1.0 then 0
    else
      let e = snd (Float.frexp v) in
      Stdlib.min e (nbuckets - 1)

  let observe h v =
    let v = if v < 0.0 then 0.0 else v in
    h.slots.(index v) <- h.slots.(index v) + 1;
    h.hcount <- h.hcount + 1;
    h.hsum <- h.hsum +. v;
    if v > h.hmax then h.hmax <- v

  let count h = h.hcount
  let sum h = h.hsum
  let max_value h = h.hmax
  let mean h = if h.hcount = 0 then 0.0 else h.hsum /. float_of_int h.hcount
  let bucket_counts h = Array.copy h.slots

  let quantile h q =
    if q < 0.0 || q > 1.0 then invalid_arg "Metrics.Histogram.quantile";
    if h.hcount = 0 then 0.0
    else begin
      let rank =
        Stdlib.max 1 (int_of_float (Float.ceil (q *. float_of_int h.hcount)))
      in
      let acc = ref 0 and idx = ref (nbuckets - 1) in
      (try
         for i = 0 to nbuckets - 1 do
           acc := !acc + h.slots.(i);
           if !acc >= rank then begin
             idx := i;
             raise Exit
           end
         done
       with Exit -> ());
      Float.min (bound !idx) h.hmax
    end
end

type hsnap = {
  counts : int array;
  count : int;
  sum : float;
  max_value : float;
}

type value = Counter_v of int | Gauge_v of int | Histogram_v of hsnap

let absorb t snap =
  List.iter
    (fun (name, help, v) ->
      match v with
      | Counter_v n -> Counter.incr ~by:n (counter ~help t name)
      | Gauge_v n ->
          let g = gauge ~help t name in
          Gauge.set g (Gauge.get g + n)
      | Histogram_v s ->
          let h = histogram ~help t name in
          Array.iteri (fun i n -> h.slots.(i) <- h.slots.(i) + n) s.counts;
          h.hcount <- h.hcount + s.count;
          h.hsum <- h.hsum +. s.sum;
          if s.max_value > h.hmax then h.hmax <- s.max_value)
    snap

let snapshot t =
  Hashtbl.fold
    (fun name (help, i) acc ->
      let v =
        match i with
        | C c -> Counter_v c.c
        | G g -> Gauge_v g.g
        | H h ->
            Histogram_v
              {
                counts = Array.copy h.slots;
                count = h.hcount;
                sum = h.hsum;
                max_value = h.hmax;
              }
      in
      (name, help, v) :: acc)
    t.table []
  |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)
