type kind = Instant | Span | Counter

type id = int

(* The process-wide event-type registry. Ids are dense ints so a
   recorded event is four plain int stores; the registry itself is
   only touched at registration (module init) and export time. *)

let reg_lock = Mutex.create ()
let reg_names : string array ref = ref (Array.make 16 "")
let reg_kinds : kind array ref = ref (Array.make 16 Instant)
let reg_count = ref 0
let reg_by_name : (string, int) Hashtbl.t = Hashtbl.create 64

let register ?(kind = Instant) name =
  Mutex.lock reg_lock;
  let id =
    match Hashtbl.find_opt reg_by_name name with
    | Some id -> id
    | None ->
        let id = !reg_count in
        let cap = Array.length !reg_names in
        if id = cap then begin
          let names = Array.make (2 * cap) "" in
          let kinds = Array.make (2 * cap) Instant in
          Array.blit !reg_names 0 names 0 cap;
          Array.blit !reg_kinds 0 kinds 0 cap;
          reg_names := names;
          reg_kinds := kinds
        end;
        !reg_names.(id) <- name;
        !reg_kinds.(id) <- kind;
        incr reg_count;
        Hashtbl.add reg_by_name name id;
        id
  in
  Mutex.unlock reg_lock;
  id

let id_name id = !reg_names.(id)
let id_kind id = !reg_kinds.(id)

let registered () =
  Mutex.lock reg_lock;
  let l =
    List.init !reg_count (fun i -> (!reg_names.(i), !reg_kinds.(i)))
  in
  Mutex.unlock reg_lock;
  l

(* The ring: parallel int arrays (no boxing — OCaml int arrays hold
   unboxed 63-bit words) indexed by a monotone write cursor masked to
   the power-of-two capacity. Single writer, quiescent readers. *)

type ring = {
  ids : int array;
  ts : int array;
  a0 : int array;
  a1 : int array;
  a2 : int array;
  mask : int;
  r_pid : int;
  r_tid : int;
  mutable w : int;
}

let default_capacity = 16384

let create ?(capacity = default_capacity) ~pid ~tid () =
  let cap =
    let rec up n = if n >= capacity then n else up (2 * n) in
    up 8
  in
  {
    ids = Array.make cap 0;
    ts = Array.make cap 0;
    a0 = Array.make cap 0;
    a1 = Array.make cap 0;
    a2 = Array.make cap 0;
    mask = cap - 1;
    r_pid = pid;
    r_tid = tid;
    w = 0;
  }

let now () = Int64.to_int (Clock.now_ns ())

let record t id a0 a1 a2 =
  let i = t.w land t.mask in
  t.ts.(i) <- now ();
  t.ids.(i) <- id;
  t.a0.(i) <- a0;
  t.a1.(i) <- a1;
  t.a2.(i) <- a2;
  t.w <- t.w + 1

let pid t = t.r_pid
let tid t = t.r_tid
let capacity t = t.mask + 1
let recorded t = t.w
let dropped t = Stdlib.max 0 (t.w - (t.mask + 1))

let clear t = t.w <- 0

type event = {
  ev_ts : int;
  ev_id : id;
  ev_pid : int;
  ev_tid : int;
  ev_a0 : int;
  ev_a1 : int;
  ev_a2 : int;
}

let events t =
  let cap = t.mask + 1 in
  let first = if t.w > cap then t.w - cap else 0 in
  List.init (t.w - first) (fun j ->
      let i = (first + j) land t.mask in
      {
        ev_ts = t.ts.(i);
        ev_id = t.ids.(i);
        ev_pid = t.r_pid;
        ev_tid = t.r_tid;
        ev_a0 = t.a0.(i);
        ev_a1 = t.a1.(i);
        ev_a2 = t.a2.(i);
      })

let merge rings =
  List.concat_map events rings
  |> List.stable_sort (fun a b -> Stdlib.compare a.ev_ts b.ev_ts)
