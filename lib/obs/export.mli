(** Pluggable renderings of a {!Metrics} registry.

    Three formats, all over the same {!Metrics.snapshot}:

    - {!prometheus}: the Prometheus text exposition format
      (["# TYPE"] lines, [_bucket{le="..."}] cumulative histogram
      series, [_sum] / [_count]). Metric names are sanitized to
      [[a-zA-Z0-9_:]].
    - {!json_lines}: one self-contained JSON object per line —
      grep-able, appendable, trivially machine-parsed.
    - {!table}: a human-oriented table via {!Dip_stdext.Tabular}
      (histograms summarized as count/mean/p50/p99/max). *)

val prometheus : Metrics.t -> string

val json_lines : Metrics.t -> string

val table : Metrics.t -> string

val sanitize : string -> string
(** The Prometheus name mangling: every character outside
    [[a-zA-Z0-9_:]] becomes ['_']; a leading digit is prefixed with
    ['_']. Exposed for the export round-trip tests. *)

val chrome_trace : ?pid_names:(int * string) list -> Flight.event list -> string
(** Render a merged {!Flight} timeline as Chrome trace-event JSON
    (loadable in Perfetto / about://tracing). Spans become complete
    ["X"] events (microsecond [ts]/[dur], start recovered as
    [end - duration]), instants ["i"], counters ["C"]; [pid] and
    [tid] come from the recording ring. [pid_names] adds
    [process_name] metadata (e.g. node names); every distinct
    (pid, tid) gets a ["domain N"] thread label. Timestamps are
    rebased so the earliest event starts at 0. *)

val timeline : Flight.event list -> string
(** The same timeline as plain text, one event per line, for
    terminal inspection without a trace viewer. *)
