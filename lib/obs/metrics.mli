(** The unified metrics registry: counters, gauges and fixed-bucket
    log-scale histograms.

    Everything the engine, simulator and program cache measure is
    registered here under a dotted name and exported uniformly
    ({!Export}). The design constraint is the per-packet hot path:
    {e registration} (name lookup) happens once, at instrumentation
    setup, and returns a handle; {e recording} through a handle is a
    field store on a mutable record — no hashing, no allocation, no
    boxing. A packet-processing loop holding pre-resolved handles
    pays a few nanoseconds per event.

    Histograms use fixed power-of-two buckets (log scale), not
    reservoirs: observing a value is "find the exponent, bump a slot
    of an int array". Quantiles read from a histogram are therefore
    {e estimates} with one-bucket (2x) resolution — the right
    trade-off for latency distributions on the hot path, where
    {!Dip_netsim.Stats.Series} reservoir sampling would allocate and
    resample per packet. *)

type t
(** A registry: a mutable set of named instruments. *)

type counter
(** Monotonically increasing integer. *)

type gauge
(** Integer that can go up and down (queue depth, cache size). *)

type histogram
(** Log-scale distribution of non-negative values (latency in ns,
    sizes in bytes). *)

val create : unit -> t

(** {1 Registration}

    Registering the same name twice returns the {e same} handle, so
    independent instrumentation sites may share an instrument.
    Registering a name that already exists with a different
    instrument kind raises [Invalid_argument]. *)

val counter : ?help:string -> t -> string -> counter
val gauge : ?help:string -> t -> string -> gauge
val histogram : ?help:string -> t -> string -> histogram

(** {1 Recording through handles} *)

module Counter : sig
  val incr : ?by:int -> counter -> unit
  val get : counter -> int
end

module Gauge : sig
  val set : gauge -> int -> unit
  val get : gauge -> int
end

module Histogram : sig
  val buckets : int
  (** Number of buckets. Bucket [0] holds values [< 1]; bucket [i]
      ([1 <= i < buckets-1]) holds values in [[2{^i-1}, 2{^i})]; the
      last bucket holds everything larger. *)

  val bound : int -> float
  (** [bound i] is the exclusive upper bound of bucket [i]
      ([infinity] for the last). *)

  val observe : histogram -> float -> unit
  (** Record one value. Negative values count as 0. *)

  val count : histogram -> int
  val sum : histogram -> float
  val max_value : histogram -> float
  (** Largest value observed; [0.] when empty. *)

  val mean : histogram -> float
  (** [0.] when empty. *)

  val bucket_counts : histogram -> int array
  (** A copy of the per-bucket counts (length {!buckets}). *)

  val quantile : histogram -> float -> float
  (** [quantile h q] with [q] in [[0,1]]: an {e estimate} of the
      q-quantile — the upper bound of the bucket holding the rank,
      clamped to {!max_value}. Accurate to one power-of-two bucket.
      [0.] when empty; raises [Invalid_argument] if [q] is outside
      [[0,1]]. *)
end

(** {1 Snapshot for exporters} *)

type hsnap = {
  counts : int array;  (** per-bucket counts, length {!Histogram.buckets} *)
  count : int;
  sum : float;
  max_value : float;
}

type value = Counter_v of int | Gauge_v of int | Histogram_v of hsnap

val snapshot : t -> (string * string * value) list
(** [(name, help, value)] for every registered instrument, sorted by
    name. *)

val absorb : t -> (string * string * value) list -> unit
(** Merge a {!snapshot} of another registry into [t], registering
    instruments as needed: counters and histogram buckets (count,
    sum, max) add; gauges add too, so a merged gauge reads as the
    sum across the absorbed registries — the aggregation a
    multi-domain data plane wants when per-worker registries are
    folded together on drain ({!Dip_mcore}). *)
